"""Exception hierarchy for the MDES reproduction library.

Every exception carries an ``http_status`` so the network tier
(:mod:`repro.server`) can map failures onto responses without a
type-by-type table: client mistakes (bad requests, unknown machines)
are 4xx, capacity shedding is 429, expired deadlines are 504, and
anything else is a 500.  Library code never inspects the attribute --
it exists purely so the error taxonomy *is* the HTTP contract.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""

    #: HTTP status the server tier maps this failure onto.
    http_status = 500


class MdesError(ReproError):
    """An inconsistency in a machine description."""

    # A broken description reaches the server only inside a request
    # (bad stage/backend combination, malformed HMDES): client-side.
    http_status = 400


class RequestError(ReproError):
    """A malformed or unsatisfiable scheduling request.

    Raised by request validation (:mod:`repro.service.models`) and by
    the server's wire-level decoding: unknown machines or backends,
    out-of-range stages, bodies that do not parse.
    """

    http_status = 400


class HmdesError(MdesError):
    """Base class for high-level MDES language errors."""


class HmdesSyntaxError(HmdesError):
    """A lexical or syntactic error in HMDES source text.

    Carries the 1-based source line so the MDES writer can find the fault.
    """

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class HmdesSemanticError(HmdesError):
    """A well-formed HMDES construct that does not make sense.

    Examples: a reference to an undeclared resource, a duplicate section
    entry, or an operation mapped to a missing operation class.
    """


class SchedulingError(ReproError):
    """The scheduler could not make progress (e.g. an unschedulable op)."""


class CacheCorruptionError(ReproError):
    """A persistent cache entry failed to load back.

    Raised (in strict mode) or recorded by the disk tier when an entry
    is truncated, version-mismatched, or structurally broken.  Always
    *retryable*: the entry is quarantined and a rebuild succeeds.
    """


class ServiceError(ReproError):
    """A batch-service request could not be completed.

    Carries the per-block failure records (``failures``) when the run
    was configured to collect them before raising.
    """

    def __init__(self, message, failures=()):
        super().__init__(message)
        self.failures = list(failures)


class ChunkTimeoutError(ServiceError):
    """One dispatched chunk exceeded its wall-clock budget."""


class VerificationError(ServiceError):
    """A finished schedule failed independent oracle verification.

    Raised by the batch service when ``BatchConfig.verify`` is set and
    the oracle rejects the assembled schedules (``on_error="raise"``
    mode).  Carries the full :class:`~repro.verify.oracle.VerifyReport`
    as ``report``.
    """

    def __init__(self, message, report=None, failures=()):
        super().__init__(message, failures)
        self.report = report


class WorkerCrashError(ServiceError):
    """A pool worker died (or a crash was injected) mid-chunk."""


class BackpressureError(ServiceError):
    """The service shed this request instead of queueing it unboundedly.

    Base class of the two load-shedding verdicts; carries the
    ``retry_after`` hint (seconds) the server surfaces as the HTTP
    ``Retry-After`` header.
    """

    http_status = 429

    def __init__(self, message, retry_after=1.0, failures=()):
        super().__init__(message, failures)
        self.retry_after = max(0.0, float(retry_after))


class QueueFullError(BackpressureError):
    """The bounded request queue is at capacity; try again later."""


class QuotaExceededError(BackpressureError):
    """One client holds its full in-flight allowance already."""


class DeadlineExceededError(ServiceError):
    """A request's deadline expired before its schedule was produced."""

    http_status = 504


class ShuttingDownError(ServiceError):
    """The service is draining and no longer admits new requests."""

    http_status = 503


def http_status_for(error: BaseException) -> int:
    """The HTTP status a failure maps onto (500 for foreign types)."""
    return int(getattr(error, "http_status", 500))
