"""Tests for the backtracking operation scheduler."""

import pytest

from repro.ir.block import BasicBlock
from repro.ir.operation import Operation
from repro.lowlevel.compiled import compile_mdes
from repro.machines import get_machine
from repro.scheduler import schedule_workload
from repro.scheduler.operation_scheduler import OperationScheduler
from repro.workloads import WorkloadConfig, generate_blocks


@pytest.fixture(scope="module")
def sparc():
    machine = get_machine("SuperSPARC")
    return machine, compile_mdes(machine.build_andor(), bitvector=True)


class TestDefaultPriority:
    def test_valid_schedules_on_workload(self, sparc):
        machine, compiled = sparc
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=400))
        scheduler = OperationScheduler(machine, compiled)
        for block in blocks:
            result = scheduler.schedule_block(block)
            assert len(result.schedule.times) == len(block)

    def test_comparable_quality_to_list_scheduler(self, sparc):
        machine, compiled = sparc
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=600))
        scheduler = OperationScheduler(machine, compiled)
        op_cycles = sum(
            scheduler.schedule_block(block).schedule.length
            for block in blocks
        )
        list_cycles = schedule_workload(
            machine, compiled, blocks
        ).total_cycles
        assert op_cycles <= list_cycles * 1.2


class TestInvertedPriority:
    @staticmethod
    def _loads_last(graph, block):
        """A deliberately bad priority: loads after their consumers.

        Branches stay last: scheduling a block's branch first would pin
        every other operation's window to the branch cycle (control
        dependences) and thrash the budget.
        """
        def key(op):
            if op.is_branch:
                return (2, op.index)
            if op.is_load:
                return (1, -op.index)
            return (0, -op.index)

        return {op.index: key(op) for op in block}

    def test_eviction_occurs_and_schedule_stays_valid(self, sparc):
        """Consumers placed before producers force dependence evictions."""
        machine, compiled = sparc
        block = BasicBlock(
            "B",
            [
                Operation(0, "LD", ("r1",), ("a0",), is_load=True),
                Operation(1, "ADD", ("r2",), ("r1",)),
                Operation(2, "LD", ("r3",), ("a1",), is_load=True),
                Operation(3, "ADD", ("r4",), ("r3",)),
            ],
        )
        scheduler = OperationScheduler(
            machine, compiled, priority_fn=self._loads_last
        )
        result = scheduler.schedule_block(block)
        assert result.evictions > 0
        # Validation runs inside schedule_block; re-check key edges.
        assert result.schedule.times[1] >= result.schedule.times[0] + 1
        assert result.schedule.times[3] >= result.schedule.times[2] + 1

    def test_attempts_exceed_list_scheduler(self, sparc):
        """Backtracking inflates attempts/op (the paper's section 4
        remark about advanced scheduling techniques)."""
        machine, compiled = sparc
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=500))
        scheduler = OperationScheduler(
            machine, compiled, priority_fn=self._loads_last,
            budget_ratio=64,
        )
        total_ops = total_attempts = 0
        for block in blocks:
            result = scheduler.schedule_block(block)
            total_ops += len(block)
            total_attempts += result.stats.attempts
        list_run = schedule_workload(machine, compiled, blocks)
        assert total_attempts / total_ops > list_run.attempts_per_op


class TestResourceForcedEviction:
    def test_single_unit_contention(self, sparc):
        """Equal-priority loads fighting for one memory unit."""
        machine, compiled = sparc

        def flat_priority(graph, block):
            return {op.index: (0, op.index) for op in block}

        loads = [
            Operation(i, "LD", (f"r{i}",), (f"a{i}",), is_load=True)
            for i in range(4)
        ]
        block = BasicBlock("B", loads)
        scheduler = OperationScheduler(
            machine, compiled, priority_fn=flat_priority,
            budget_ratio=64,
        )
        result = scheduler.schedule_block(block)
        times = sorted(result.schedule.times.values())
        assert len(set(times)) == 4  # one load per cycle
