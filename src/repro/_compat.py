"""Machinery for ``__getattr__``-based deprecated re-exports.

When a public name moves to a new canonical home, the old module keeps
serving it through a module-level ``__getattr__`` that warns exactly
once per (module, name) pair per process -- loud enough to be seen,
quiet enough not to drown a long batch run that hits the shim in a
loop.  The canonical import path never warns.
"""

from __future__ import annotations

import warnings

#: (module, name) pairs that have already warned this process.
_WARNED = set()


def deprecated_reexport(module: str, name: str, canonical: str, value):
    """Serve a moved attribute from its old module, warning once."""
    key = (module, name)
    if key not in _WARNED:
        _WARNED.add(key)
        warnings.warn(
            f"importing {name!r} from {module!r} is deprecated; "
            f"import it from {canonical!r} instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return value


def deprecated_call(module: str, name: str, message: str) -> None:
    """Warn once per (module, name) about a deprecated calling style.

    The sibling of :func:`deprecated_reexport` for signatures rather
    than import paths: an old kwarg convention keeps working, warns the
    first time a process uses it, and stays quiet after that.
    """
    key = (module, name)
    if key not in _WARNED:
        _WARNED.add(key)
        warnings.warn(message, DeprecationWarning, stacklevel=4)


def reset_deprecation_warnings() -> None:
    """Forget which shims have warned (test scaffolding)."""
    _WARNED.clear()
