"""Ablation: reservation tables vs finite-state automata (section 10).

The related-work automata answer an issue test in one transition lookup.
The paper argues its transformations plus AND/OR-trees mitigate that
advantage.  This bench drives an identical cycle scheduler through both
backends over the fully optimized descriptions and compares work and
wall-clock -- and confirms both backends produce the same schedule.
"""

import pytest
from conftest import KERNEL_OPS, write_result

from repro.transforms.pipeline import staged_mdes
from repro.analysis.reporting import format_table
from repro.automata import (
    AutomatonBackend,
    TableBackend,
    cycle_schedule_workload,
)
from repro.lowlevel.compiled import compile_mdes
from repro.lowlevel.layout import mdes_size_bytes
from repro.machines import MACHINE_NAMES, get_machine
from repro.workloads import WorkloadConfig, generate_blocks


def _compiled(machine_name):
    machine = get_machine(machine_name)
    return machine, compile_mdes(
        staged_mdes(machine.build_andor(), 4), bitvector=True
    )


def test_ablation_automata_regenerate(results_dir, benchmark):
    def build_rows():
        rows = []
        for name in MACHINE_NAMES:
            machine, compiled = _compiled(name)
            blocks = generate_blocks(
                machine, WorkloadConfig(total_ops=4000)
            )
            table_result, table_checks = cycle_schedule_workload(
                machine, TableBackend(compiled), blocks
            )
            automaton_backend = AutomatonBackend(compiled)
            automaton_result, lookups = cycle_schedule_workload(
                machine, automaton_backend, blocks
            )
            assert (
                table_result.signature() == automaton_result.signature()
            )
            automaton = automaton_backend.automaton
            rows.append(
                (
                    name,
                    table_checks,
                    mdes_size_bytes(compiled),
                    lookups,
                    automaton.state_count(),
                    automaton.memory_bytes(),
                    f"{automaton.stats.hit_ratio * 100:.1f}%",
                )
            )
        return rows

    rows = benchmark(build_rows)
    text = format_table(
        (
            "MDES", "Table Checks", "Table Bytes",
            "FSA Lookups", "FSA States", "FSA Bytes", "FSA Hit",
        ),
        rows,
        title=(
            "Ablation: optimized reservation tables vs finite-state "
            "automata (identical schedules)"
        ),
    )
    write_result(results_dir, "ablation_automata.txt", text)


@pytest.mark.parametrize("backend_kind", ["tables", "automaton"])
def test_ablation_bench_backends(benchmark, backend_kind,
                                 kernel_workloads):
    """Wall-clock for the same cycle scheduling on each backend."""
    machine, compiled = _compiled("SuperSPARC")
    blocks = kernel_workloads("SuperSPARC")

    if backend_kind == "tables":
        def run():
            return cycle_schedule_workload(
                machine, TableBackend(compiled), blocks
            )[1]
    else:
        # Pre-warm one automaton so steady-state lookups are timed.
        warm = AutomatonBackend(compiled)
        cycle_schedule_workload(machine, warm, blocks)

        def run():
            warm.automaton.stats.lookups = 0
            return cycle_schedule_workload(machine, warm, blocks)[1]

    work = benchmark(run)
    assert work > 0
