"""Operations: the units the scheduler places into cycles."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class Operation:
    """One assembly-level operation.

    Attributes:
        index: Position within its basic block (unique id there).
        opcode: Platform opcode, e.g. ``"ADD"``; must appear in the
            machine description's opcode map.
        dests: Destination register names (empty for stores/branches).
        srcs: Source register names.
        is_load / is_store / is_branch: Memory/control classification used
            by the dependence builder.
    """

    index: int
    opcode: str
    dests: Tuple[str, ...] = ()
    srcs: Tuple[str, ...] = ()
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False

    @property
    def is_mem(self) -> bool:
        """Whether the operation accesses memory."""
        return self.is_load or self.is_store

    @property
    def reg_src_count(self) -> int:
        """Number of distinct register sources (selects 1-src/2-src forms)."""
        return len(set(self.srcs))

    def __repr__(self) -> str:
        dests = ",".join(self.dests)
        srcs = ",".join(self.srcs)
        return f"{self.index}: {self.opcode} {dests} <- {srcs}"
