"""Tests for operand read times and bypass (forwarding) modeling.

The paper's footnote 1 lists operation latencies and the modeling of
bypassing/forwarding effects as part of real machine descriptions; this
library models them with per-class ``read`` times and a ``bypass``
section.
"""

import pytest

from repro.core.mdes import Bypass
from repro.errors import HmdesSemanticError, HmdesSyntaxError, MdesError
from repro.hmdes import load_mdes, write_mdes
from repro.ir.block import BasicBlock
from repro.ir.dependence import build_dependence_graph
from repro.ir.operation import Operation
from repro.lowlevel.compiled import compile_mdes
from repro.machines import get_machine
from repro.scheduler import ListScheduler

SOURCE = """
mdes M;
section resource { A; B; FAST; }
section opclass {
    producer { resv ortree { option { use A at 0; } }; latency 3; }
    consumer { resv ortree { option { use B at 0; } }; latency 1; }
    consumer_fast { resv ortree { option { use FAST at 0; } };
                    latency 1; }
    early_reader { resv ortree { option { use B at 1; } };
                   latency 1; read -1; }
}
section bypass {
    producer -> consumer: latency 1 class consumer_fast;
}
section operation {
    P: producer; C: consumer; E: early_reader;
}
"""


class TestLanguage:
    def test_read_time_parsed(self):
        mdes = load_mdes(SOURCE)
        assert mdes.op_class("early_reader").read_time == -1
        assert mdes.op_class("consumer").read_time == 0

    def test_bypass_parsed(self):
        mdes = load_mdes(SOURCE)
        bypass = mdes.bypass_for("producer", "consumer")
        assert bypass == Bypass(1, "consumer_fast")
        assert mdes.bypass_for("consumer", "producer") is None

    def test_flow_latency_includes_read_time(self):
        mdes = load_mdes(SOURCE)
        assert mdes.flow_latency("producer", "consumer") == 3
        assert mdes.flow_latency("producer", "early_reader") == 4
        assert mdes.flow_latency("consumer", "consumer") == 1

    def test_flow_latency_never_negative(self):
        source = SOURCE.replace("read -1", "read 5")
        mdes = load_mdes(source)
        assert mdes.flow_latency("producer", "early_reader") == 0

    def test_roundtrip_preserves_read_and_bypass(self):
        mdes = load_mdes(SOURCE)
        again = load_mdes(write_mdes(mdes))
        assert again.op_class("early_reader").read_time == -1
        assert again.bypasses == mdes.bypasses

    def test_duplicate_bypass_rejected(self):
        bad = SOURCE.replace(
            "section operation",
            "section bypass { producer -> consumer: latency 0; }\n"
            "section operation",
        )
        with pytest.raises(HmdesSemanticError, match="declared twice"):
            load_mdes(bad)

    def test_bypass_to_unknown_class_rejected(self):
        bad = SOURCE.replace(
            "producer -> consumer: latency 1 class consumer_fast;",
            "producer -> ghost: latency 1;",
        )
        with pytest.raises(MdesError, match="unknown class"):
            load_mdes(bad)

    def test_non_shortcut_bypass_rejected(self):
        bad = SOURCE.replace(
            "producer -> consumer: latency 1 class consumer_fast;",
            "producer -> consumer: latency 3;",
        )
        with pytest.raises(MdesError, match="not a shortcut"):
            load_mdes(bad)


class TestDependenceIntegration:
    def test_agi_extends_flow_latency(self):
        """SuperSPARC address generation interlock (section 2)."""
        machine = get_machine("SuperSPARC")
        producer = Operation(0, "ADD", ("r1",), ("li0",))
        load = Operation(1, "LD", ("r2",), ("r1",), is_load=True)
        block = BasicBlock("B", [producer, load])
        graph = build_dependence_graph(
            block,
            machine.latency,
            flow_latency_of=machine.flow_latency,
            bypass_of=machine.bypass,
        )
        edge = graph.preds_of(1)[0]
        assert edge.latency == 2  # 1-cycle ADD + 1-cycle interlock

    def test_bypass_edge_carries_substitute_class(self):
        machine = get_machine("SuperSPARC")
        producer = Operation(0, "ADD", ("r1",), ("li0",))
        consumer = Operation(1, "SUB", ("r2",), ("r1",))
        block = BasicBlock("B", [producer, consumer])
        graph = build_dependence_graph(
            block,
            machine.latency,
            flow_latency_of=machine.flow_latency,
            bypass_of=machine.bypass,
        )
        edge = graph.preds_of(1)[0]
        assert edge.min_latency == 0
        assert edge.bypass_class == "cascade_1src"

    def test_opcode_filter_gates_bypass(self):
        machine = get_machine("SuperSPARC")
        producer = Operation(0, "SETHI", ("r1",), ())
        consumer = Operation(1, "ADD", ("r2",), ("r1",))
        # SETHI is outside the cascade opcode subset.
        assert machine.bypass(producer, consumer) is None


class TestSchedulerIntegration:
    def test_agi_delays_dependent_load(self):
        machine = get_machine("SuperSPARC")
        compiled = compile_mdes(machine.build_andor())
        block = BasicBlock(
            "B",
            [
                Operation(0, "ADD", ("r1",), ("li0",)),
                Operation(1, "LD", ("r2",), ("r1",), is_load=True),
            ],
        )
        schedule = ListScheduler(machine, compiled).schedule_block(block)
        assert schedule.times[1] >= schedule.times[0] + 2

    def test_bypass_substitute_class_used_at_distance_zero(self):
        machine = get_machine("SuperSPARC")
        compiled = compile_mdes(machine.build_andor())
        block = BasicBlock(
            "B",
            [
                Operation(0, "ADD", ("r1",), ("li0",)),
                Operation(1, "SUB", ("r2",), ("r1",)),
            ],
        )
        schedule = ListScheduler(machine, compiled).schedule_block(block)
        assert schedule.times[1] == schedule.times[0]
        assert schedule.classes[1] == "cascade_1src"
