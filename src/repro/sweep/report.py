"""Sweep result vocabulary: per-variant rows and the aggregate report.

A sweep's value is the *table*, not any single run: schedule length,
transform effect columns, and oracle verdicts across hundreds of
machine variants, joined against each variant's complexity axes.  The
rows here are deliberately restricted to thread-interleaving-free data
(no wall-clock, no shared-cache deltas), which is what makes a
4-worker sweep bit-identical to the serial one -- the same determinism
contract the batch service keeps per workload, lifted to fleet level.

The JSONL form is one meta line followed by one line per variant, so a
thousand-variant report streams and greps well; ``read_jsonl`` round-
trips it losslessly for offline joins.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: Bump when the JSONL layout changes.
REPORT_VERSION = 1


@dataclass
class VariantResult:
    """One machine variant's deterministic sweep row.

    ``ok`` is False for quarantined variants (resolution or scheduling
    blew up); such rows carry the typed error and nothing else, and do
    not poison the rest of the fleet.
    """

    index: int
    name: str
    ok: bool
    error_type: Optional[str] = None
    error_message: Optional[str] = None
    #: sha256 content token of the variant's HMDES source.
    content: Optional[str] = None
    #: Description size axes (resources/classes/options/usages).
    complexity: Dict[str, int] = field(default_factory=dict)
    #: Schedule digest + run totals on the sweep workload.
    digest: Optional[str] = None
    blocks: int = 0
    ops: int = 0
    cycles: int = 0
    attempts: int = 0
    options_per_attempt: float = 0.0
    checks_per_attempt: float = 0.0
    #: Per-transform effect columns (options/usages/trees before,
    #: after, delta per stage) -- ``obs.transform_effects()`` shape
    #: minus the nondeterministic ``seconds`` column.
    transforms: List[Dict[str, Any]] = field(default_factory=list)
    verify_ok: Optional[bool] = None
    verify_diagnostics: int = 0
    #: Optional exact-gap sample (only on sampled variants).
    exact: Optional[Dict[str, Any]] = None

    @property
    def options_delta_total(self) -> int:
        """Summed stored-option reduction across the pipeline."""
        return sum(
            entry.get("options_delta", 0) for entry in self.transforms
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VariantResult":
        return cls(**data)


@dataclass
class SweepReport:
    """The aggregate of one fleet sweep."""

    family: str
    count: int
    seed: int
    ops: int
    workload_seed: int
    backend: str
    stage: int
    workers: int
    variants: List[VariantResult] = field(default_factory=list)
    #: Fleet-level warm-cache counters (worker-interleaving dependent,
    #: so reported here and never per variant).
    cache: Dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------

    @property
    def ok_variants(self) -> List[VariantResult]:
        return [v for v in self.variants if v.ok]

    @property
    def quarantined(self) -> int:
        return sum(1 for v in self.variants if not v.ok)

    @property
    def oracle_failures(self) -> int:
        return sum(
            1 for v in self.variants if v.verify_ok is False
        )

    @property
    def distinct_descriptions(self) -> int:
        """Distinct compiled descriptions the sweep covered."""
        return len({
            v.content for v in self.variants if v.ok and v.content
        })

    @property
    def ok(self) -> bool:
        return self.quarantined == 0 and self.oracle_failures == 0

    def signature(self) -> Tuple:
        """Deterministic digest tuple: serial == N-worker, always."""
        return tuple(
            (v.name, v.ok, v.digest or v.error_type or "")
            for v in self.variants
        )

    def signature_digest(self) -> str:
        return hashlib.sha256(
            repr(self.signature()).encode("utf-8")
        ).hexdigest()

    def transform_totals(self) -> Dict[str, Dict[str, int]]:
        """Summed effect columns per transform stage across the fleet."""
        totals: Dict[str, Dict[str, int]] = {}
        for variant in self.ok_variants:
            for entry in variant.transforms:
                row = totals.setdefault(
                    entry.get("stage", "?"),
                    {"options_delta": 0, "usages_delta": 0, "variants": 0},
                )
                row["options_delta"] += entry.get("options_delta", 0)
                row["usages_delta"] += entry.get("usages_delta", 0)
                row["variants"] += 1
        return totals

    def complexity_buckets(
        self, buckets: int = 4
    ) -> List[Dict[str, Any]]:
        """Transform effectiveness vs. machine complexity.

        The paper evaluates its transforms at 4 fixed machines; a sweep
        measures the same effect columns as a *function* of description
        size.  Variants are bucketed by stored-option count (the Table
        6 size axis); each bucket reports the mean relative option
        reduction and the mean checks/attempt the scheduler saw.
        """
        rows = [
            v for v in self.ok_variants
            if v.complexity.get("stored_options")
        ]
        if not rows:
            return []
        rows.sort(key=lambda v: (v.complexity["stored_options"], v.index))
        out: List[Dict[str, Any]] = []
        per = max(1, len(rows) // buckets)
        for start in range(0, len(rows), per):
            chunk = rows[start:start + per]
            stored = [v.complexity["stored_options"] for v in chunk]
            reduction = [
                -v.options_delta_total / v.complexity["stored_options"]
                for v in chunk
            ]
            out.append({
                "variants": len(chunk),
                "stored_options_min": min(stored),
                "stored_options_max": max(stored),
                "mean_option_reduction": (
                    sum(reduction) / len(reduction)
                ),
                "mean_checks_per_attempt": (
                    sum(v.checks_per_attempt for v in chunk) / len(chunk)
                ),
                "mean_cycles_per_op": (
                    sum(v.cycles / v.ops for v in chunk if v.ops)
                    / max(1, sum(1 for v in chunk if v.ops))
                ),
            })
        return out

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def meta_dict(self) -> Dict[str, Any]:
        """The report header (everything but the per-variant rows)."""
        return {
            "kind": "sweep-meta",
            "version": REPORT_VERSION,
            "family": self.family,
            "count": self.count,
            "seed": self.seed,
            "ops": self.ops,
            "workload_seed": self.workload_seed,
            "backend": self.backend,
            "stage": self.stage,
            "workers": self.workers,
            "variants": len(self.variants),
            "quarantined": self.quarantined,
            "oracle_failures": self.oracle_failures,
            "distinct_descriptions": self.distinct_descriptions,
            "signature": self.signature_digest(),
            "cache": dict(self.cache),
            "wall_seconds": self.wall_seconds,
        }

    def summary_dict(self) -> Dict[str, Any]:
        """The CLI ``--json`` document (aggregates, not rows)."""
        digest = self.meta_dict()
        digest.pop("kind")
        digest["ok"] = self.ok
        digest["total_ops"] = sum(v.ops for v in self.ok_variants)
        digest["total_cycles"] = sum(
            v.cycles for v in self.ok_variants
        )
        digest["transform_totals"] = self.transform_totals()
        digest["complexity_buckets"] = self.complexity_buckets()
        exact_rows = [
            v.exact for v in self.ok_variants if v.exact is not None
        ]
        if exact_rows:
            digest["exact"] = {
                "sampled": len(exact_rows),
                "gap_cycles": sum(
                    r.get("gap_cycles", 0) for r in exact_rows
                ),
                "optimal_blocks": sum(
                    r.get("optimal_blocks", 0) for r in exact_rows
                ),
            }
        return digest

    def write_jsonl(self, path) -> Path:
        """Meta line + one line per variant; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(
                json.dumps(self.meta_dict(), sort_keys=True) + "\n"
            )
            for variant in self.variants:
                row = {"kind": "variant"}
                row.update(variant.to_dict())
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        return path

    @classmethod
    def read_jsonl(cls, path) -> "SweepReport":
        """Round-trip a written report (offline analysis, tests)."""
        lines = Path(path).read_text(encoding="utf-8").splitlines()
        if not lines:
            raise ValueError(f"empty sweep report: {path}")
        meta = json.loads(lines[0])
        if meta.get("kind") != "sweep-meta":
            raise ValueError(
                f"{path}: first line is not a sweep-meta header"
            )
        if meta.get("version") != REPORT_VERSION:
            raise ValueError(
                f"{path}: report version {meta.get('version')} != "
                f"{REPORT_VERSION}"
            )
        report = cls(
            family=meta["family"],
            count=meta["count"],
            seed=meta["seed"],
            ops=meta["ops"],
            workload_seed=meta["workload_seed"],
            backend=meta["backend"],
            stage=meta["stage"],
            workers=meta["workers"],
            cache=dict(meta.get("cache", {})),
            wall_seconds=meta.get("wall_seconds", 0.0),
        )
        for line in lines[1:]:
            if not line.strip():
                continue
            row = json.loads(line)
            if row.pop("kind", None) != "variant":
                raise ValueError(f"{path}: unexpected row kind")
            report.variants.append(VariantResult.from_dict(row))
        return report

    def summary_table(self) -> str:
        """The human view: aggregate lines plus the complexity table."""
        lines = [
            f"sweep:               {self.family} x {len(self.variants)} "
            f"variants (seed {self.seed}, backend {self.backend}, "
            f"stage {self.stage}, {self.workers} worker(s))",
            f"workload:            {self.ops} ops/variant "
            f"(seed {self.workload_seed})",
            f"distinct machines:   {self.distinct_descriptions} "
            f"compiled descriptions",
            f"quarantined:         {self.quarantined}",
            f"oracle failures:     {self.oracle_failures}",
            f"wall seconds:        {self.wall_seconds:.3f}",
        ]
        if self.cache:
            lines.append(
                "warm cache:          "
                f"{self.cache.get('memory_hits', 0)} hit(s), "
                f"{self.cache.get('memory_misses', 0)} miss(es), "
                f"{self.cache.get('evictions', 0)} eviction(s)"
            )
        totals = self.transform_totals()
        if totals:
            lines.append("")
            lines.append(
                "transform            options_delta  usages_delta"
            )
            for stage, row in totals.items():
                lines.append(
                    f"{stage:20s} {row['options_delta']:13d} "
                    f"{row['usages_delta']:13d}"
                )
        buckets = self.complexity_buckets()
        if buckets:
            lines.append("")
            lines.append(
                "stored options   variants  option-reduction  "
                "checks/attempt  cycles/op"
            )
            for row in buckets:
                span = (
                    f"{row['stored_options_min']}-"
                    f"{row['stored_options_max']}"
                )
                lines.append(
                    f"{span:16s} {row['variants']:8d}  "
                    f"{row['mean_option_reduction'] * 100:14.1f}%  "
                    f"{row['mean_checks_per_attempt']:14.2f}  "
                    f"{row['mean_cycles_per_op']:9.2f}"
                )
        return "\n".join(lines)


__all__ = ["REPORT_VERSION", "SweepReport", "VariantResult"]
