"""Redundancy elimination (paper section 5).

Machine descriptions accrete duplicated and dead information as they evolve
-- MDES writers copy blocks rather than refactor.  The paper adapts three
classical compiler optimizations to clean this up:

* **common-subexpression elimination + copy propagation** (combined in the
  paper's implementation, as here): find structurally identical
  information and point every referrer at a single copy;
* **dead-code removal**: delete information nothing references.

Because tree equality in this library ignores names, interning through a
structural pool implements CSE+copy-propagation in one pass.  Trees in
``Mdes.unused_trees`` are the "dead code"; they are dropped.

The AND/OR representation benefits more than the OR representation from
this pass (the paper's Table 7 observation): its per-OR-tree options carry
fewer usages, so they collide structurally far more often, and whole
OR-trees (decoders, write ports) become shareable across AND/OR-trees.
"""

from __future__ import annotations

from typing import Dict

from repro.core.mdes import Mdes
from repro.core.tables import AndOrTree, Constraint, OrTree, ReservationTable
from repro.transforms.base import TreeRewriter


def eliminate_redundancy(mdes: Mdes) -> Mdes:
    """Share all structurally identical trees and drop unused information."""
    option_pool: Dict[ReservationTable, ReservationTable] = {}
    or_pool: Dict[OrTree, OrTree] = {}
    and_pool: Dict[AndOrTree, AndOrTree] = {}

    def intern_option(option: ReservationTable) -> ReservationTable:
        return option_pool.setdefault(option, option)

    def intern_or(tree: OrTree) -> OrTree:
        return or_pool.setdefault(tree, tree)

    def intern_and(tree: AndOrTree) -> AndOrTree:
        return and_pool.setdefault(tree, tree)

    rewriter = TreeRewriter(
        option_hook=intern_option,
        or_tree_hook=intern_or,
        and_or_hook=intern_and,
    )
    return rewriter.rewrite_mdes(mdes, drop_unused=True)
