#!/usr/bin/env python3
"""Boot ``repro serve`` on a real socket and prove the service claims.

The in-process suite (``tests/test_server.py``) covers the app; this
script covers the deployment story end to end with nothing but the
standard library on the client side:

1. start ``python -m repro.cli serve`` with a prewarmed cache;
2. wait for ``/healthz``;
3. fire concurrent mixed-machine clients (plain ``urllib`` threads)
   and check every response is bit-identical to a one-shot
   ``repro.api.schedule`` run of the same request;
4. assert the run recovered from nothing (zero resilience events) and
   shed nothing;
5. save ``/metrics`` as a CI artifact;
6. SIGTERM the server and assert a clean, graceful exit.

Run:  PYTHONPATH=src python scripts/server_smoke.py
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

MACHINES = ("PA7100", "Pentium", "SuperSPARC", "K5")
REQUESTS = 48
CLIENTS = 8


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def http(method: str, url: str, body=None, timeout: float = 30.0):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"content-type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, response.read()


def wait_healthy(base: str, deadline: float = 30.0) -> None:
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        try:
            status, _ = http("GET", f"{base}/healthz", timeout=2.0)
            if status == 200:
                return
        except (urllib.error.URLError, ConnectionError, OSError):
            pass
        time.sleep(0.2)
    raise SystemExit("server never became healthy")


def request_bodies():
    bodies = []
    for index in range(REQUESTS):
        machine = MACHINES[index % len(MACHINES)]
        ops = 40 + 10 * (index % 3)
        seed = 200 + index % 4
        bodies.append((machine, ops, seed, {
            "machine": machine,
            "workload": {"total_ops": ops, "seed": seed},
            "client": f"smoke-{index % CLIENTS}",
        }))
    return bodies


def serial_references(bodies):
    from repro import api

    references = {}
    for machine, ops, seed, _ in bodies:
        key = (machine, ops, seed)
        if key not in references:
            response = api.schedule(api.ScheduleRequest(
                machine=machine,
                workload=api.WorkloadConfig(total_ops=ops, seed=seed),
            ))
            references[key] = response.to_dict()
    return references


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics-out", default="server_metrics.txt")
    args = parser.parse_args()

    port = free_port()
    base = f"http://127.0.0.1:{port}"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", str(port), "--prewarm", "all",
            "--max-inflight", "128", "--per-client", "32",
        ],
        env=env, cwd=REPO_ROOT,
    )
    try:
        wait_healthy(base)
        bodies = request_bodies()
        print(f"server up on {base}; computing "
              f"{len(set((m, o, s) for m, o, s, _ in bodies))} serial "
              "reference runs")
        references = serial_references(bodies)

        results = [None] * len(bodies)

        def fire(index, body):
            status, raw = http("POST", f"{base}/v1/schedule", body)
            results[index] = (status, json.loads(raw))

        threads = [
            threading.Thread(target=fire, args=(index, body))
            for index, (_, _, _, body) in enumerate(bodies)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - started

        mismatches = 0
        for (machine, ops, seed, _), outcome in zip(bodies, results):
            status, payload = outcome
            assert status == 200, (status, payload)
            expected = references[(machine, ops, seed)]
            if (payload["cycles"] != expected["cycles"]
                    or payload["schedules"] != expected["schedules"]):
                mismatches += 1
                print(f"MISMATCH {machine} ops={ops} seed={seed}")
        assert mismatches == 0, f"{mismatches} responses diverged"
        print(f"{len(bodies)} concurrent requests bit-identical to "
              f"serial runs in {elapsed:.2f}s")

        _, raw = http("GET", f"{base}/healthz")
        health = json.loads(raw)
        resilience = health["resilience"]
        assert all(v == 0 for v in resilience.values()), resilience
        assert health["admission"]["rejected_total"] == 0, \
            health["admission"]
        assert health["cache"]["memory_misses"] \
            == 2 * len(MACHINES), health["cache"]
        print(f"healthz clean: resilience={resilience}, "
              f"cache={health['cache']}")

        _, metrics = http("GET", f"{base}/metrics")
        with open(args.metrics_out, "wb") as handle:
            handle.write(metrics)
        assert b"repro_server_requests_total" in metrics
        print(f"metrics saved to {args.metrics_out} "
              f"({len(metrics)} bytes)")

        server.send_signal(signal.SIGTERM)
        exit_code = server.wait(timeout=30)
        assert exit_code == 0, f"server exited {exit_code}"
        print("graceful drain: server exited 0 on SIGTERM")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
