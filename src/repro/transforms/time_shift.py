"""Usage-time shifting (paper section 7).

For any pair of reservation table options only the *differences* between
usage times of a common resource matter (the forbidden latencies / the
collision vector), never the absolute times.  Adding a per-resource
constant to every usage of that resource therefore changes no scheduling
decision -- and picking the constant well concentrates usages at time
zero, where (a) one bit-vector word covers many usages and (b) most
conflicts occur.

The paper's heuristic, implemented here:

* **forward** list scheduling: for each resource, subtract the earliest
  usage time of that resource across all options in the description, so
  its earliest usage lands at time zero;
* **backward** list scheduling: subtract the latest usage time instead,
  so the latest usage lands at time zero.
"""

from __future__ import annotations

from typing import Dict

from repro.core.mdes import Mdes
from repro.core.resource import Resource
from repro.core.tables import AndOrTree, ReservationTable
from repro.core.usage import ResourceUsage
from repro.errors import MdesError
from repro.transforms.base import TreeRewriter


def compute_shift_constants(
    mdes: Mdes, direction: str = "forward"
) -> Dict[Resource, int]:
    """Per-resource constants the transformation subtracts.

    Forward scheduling uses each resource's earliest usage time across the
    whole description; backward scheduling uses the latest.
    """
    if direction not in ("forward", "backward"):
        raise MdesError(f"unknown scheduling direction {direction!r}")
    pick_earliest = direction == "forward"
    constants: Dict[Resource, int] = {}
    for constraint in list(mdes.constraints()) + list(
        mdes.unused_trees.values()
    ):
        if isinstance(constraint, AndOrTree):
            or_trees = constraint.or_trees
        else:
            or_trees = (constraint,)
        for tree in or_trees:
            for option in tree.options:
                for usage in option.usages:
                    current = constants.get(usage.resource)
                    if current is None:
                        constants[usage.resource] = usage.time
                    elif pick_earliest:
                        constants[usage.resource] = min(current, usage.time)
                    else:
                        constants[usage.resource] = max(current, usage.time)
    return constants


def shift_usage_times(mdes: Mdes, direction: str = "forward") -> Mdes:
    """Apply the usage-time transformation to a whole description."""
    constants = compute_shift_constants(mdes, direction)

    def shift_option(option: ReservationTable) -> ReservationTable:
        usages = tuple(
            ResourceUsage(
                usage.time - constants[usage.resource], usage.resource
            )
            for usage in option.usages
        )
        return ReservationTable(usages, name=option.name)

    rewriter = TreeRewriter(option_hook=shift_option)
    return rewriter.rewrite_mdes(mdes)
