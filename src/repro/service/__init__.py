"""Batch-scheduling service layer.

Shards a workload of basic blocks across a process pool, with each
worker warming its compiled machine description from the persistent
on-disk LMDES cache instead of re-running the translate/transform
pipeline -- the paper's "load the shipped low-level file quickly"
workflow (section 4) applied to a pool of scheduling workers::

    from repro.service import BatchConfig, schedule_batch

    result = schedule_batch(
        "SuperSPARC", blocks,
        BatchConfig(backend="bitvector", workers=4,
                    cache_dir=".mdes-cache"),
    )
    result.signature()     # bit-for-bit identical for any worker count
    result.stats           # CheckStats, folded across workers
    result.cache_stats     # LRU + disk-tier hit/miss counters
"""

from repro.service.batch import (
    DEFAULT_BACKEND,
    BatchConfig,
    BatchResult,
    schedule_batch,
)

__all__ = [
    "BatchConfig",
    "BatchResult",
    "DEFAULT_BACKEND",
    "schedule_batch",
]
