"""The Machine wrapper: an MDES plus the glue the toolchain needs.

A :class:`Machine` bundles one HMDES source with everything that is not
expressible in reservation tables: the opcode workload profile, how many
register sources each opcode shape has, the dynamic operation-class
selection ("the appropriate set of reservation table options is chosen
based on an operation's incoming dependence distances", paper section 2),
and whether the paper scheduled it prepass or postpass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, Optional, Tuple

from repro.core.mdes import Mdes
from repro.hmdes.translate import load_mdes
from repro.ir.operation import Operation

#: Workload kinds understood by the generator.
KIND_INT = "int"
KIND_LOAD = "load"
KIND_STORE = "store"
KIND_BRANCH = "branch"
KIND_FP = "fp"
KIND_SERIAL = "serial"


@dataclass(frozen=True)
class OpcodeSpec:
    """One opcode's shape in the synthetic workload.

    Attributes:
        opcode: Opcode mnemonic (must be in the MDES opcode map).
        weight: Relative frequency in the generated instruction mix.
        src_choices: Possible register-source counts for instances.
        has_dest: Whether instances define a register.
        kind: Workload kind (drives memory/control dependence creation).
    """

    opcode: str
    weight: float
    src_choices: Tuple[int, ...] = (2,)
    has_dest: bool = True
    kind: str = KIND_INT


ClassifierFn = Callable[[Operation, bool], str]
CascadeFn = Callable[[Operation, Operation], bool]


@dataclass
class Machine:
    """One target processor: description source plus toolchain glue."""

    name: str
    hmdes_source: str
    opcode_profile: Tuple[OpcodeSpec, ...]
    classifier: ClassifierFn
    #: Optional opcode-level *filter* on the MDES's forwarding paths:
    #: a bypass applies to a pair only when this returns True.  The MDES
    #: ``bypass`` section is what declares that a path exists at all.
    cascade_fn: Optional[CascadeFn] = None
    scheduling_mode: str = "prepass"
    register_pool: int = 256
    block_size_range: Tuple[int, int] = (4, 14)
    flow_probability: float = 0.55
    wrap_or_trees: bool = False
    _mdes: Optional[Mdes] = field(default=None, repr=False)
    _mdes_andor: Optional[Mdes] = field(default=None, repr=False)
    _mdes_or: Optional[Mdes] = field(default=None, repr=False)

    def build(self) -> Mdes:
        """Parse and translate the HMDES source (cached)."""
        if self._mdes is None:
            self._mdes = load_mdes(self.hmdes_source)
        return self._mdes

    def build_andor(self) -> Mdes:
        """The AND/OR-tree representation of this description.

        For most machines this is the description as written.  The
        Pentium's description contains no AND/OR-trees (its pairing rules
        have nothing to factor), so -- as in the paper's tooling -- each
        flat OR-tree is wrapped in a one-child AND node, which costs a
        little space (Table 6 footnote).
        """
        if self._mdes_andor is None:
            mdes = self.build()
            if self.wrap_or_trees:
                from repro.core.tables import AndOrTree, OrTree

                def wrap(constraint):
                    if isinstance(constraint, OrTree):
                        return AndOrTree((constraint,), name=constraint.name)
                    return constraint

                mdes = mdes.map_constraints(wrap)
            self._mdes_andor = mdes
        return self._mdes_andor

    def build_or(self) -> Mdes:
        """The flat OR-tree representation (AND/OR-trees expanded out).

        This mirrors the paper's preprocessor that expands each AND/OR
        specification into the corresponding OR-tree for the comparison
        experiments (section 4).
        """
        if self._mdes_or is None:
            self._mdes_or = self.build().expanded()
        return self._mdes_or

    def fresh_mdes(self) -> Mdes:
        """A newly translated, unshared copy of the description."""
        return load_mdes(self.hmdes_source)

    def classify(self, op: Operation, cascaded: bool = False) -> str:
        """Operation class for an instance, given its cascade state."""
        return self.classifier(op, cascaded)

    def bypass(self, producer: Operation, consumer: Operation):
        """The MDES forwarding path for this flow pair, if allowed.

        Requires both a ``bypass`` entry between the pair's classes in
        the description and (when present) the machine's opcode-level
        filter to agree.
        """
        mdes = self.build()
        result = mdes.bypass_for(
            self.classify(producer, False), self.classify(consumer, False)
        )
        if result is None:
            return None
        if self.cascade_fn is not None and not self.cascade_fn(
            producer, consumer
        ):
            return None
        return result

    def cascade_ok(self, producer: Operation, consumer: Operation) -> bool:
        """Whether this flow-dependent pair has a forwarding shortcut."""
        return self.bypass(producer, consumer) is not None

    def latency(self, op: Operation) -> int:
        """Destination latency of an operation (non-cascaded class)."""
        return self.build().op_class(self.classify(op, False)).latency

    def flow_latency(self, producer: Operation, consumer: Operation) -> int:
        """Effective flow latency including the consumer's read time."""
        return self.build().flow_latency(
            self.classify(producer, False), self.classify(consumer, False)
        )

    def spec_for_opcode(self, opcode: str) -> OpcodeSpec:
        """The workload spec of an opcode."""
        for spec in self.opcode_profile:
            if spec.opcode == opcode:
                return spec
        raise KeyError(opcode)
