"""A constraint-query interface for compiler modules beyond the scheduler.

The paper's introduction argues that ILP transformations -- predication,
height reduction, and others -- "also need to use execution constraints
to avoid over-subscription of processor resources", and that most forgo
it because accessing an accurate description efficiently is hard.  This
module is that access path: questions other compiler modules ask,
answered from the same compiled representation the scheduler uses.

All queries are stateless with respect to any particular schedule: they
probe fresh RU maps, so they characterize the *machine*, not a schedule
in progress.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.lowlevel.bitvector import RUMap
from repro.lowlevel.checker import ConstraintChecker
from repro.lowlevel.compiled import CompiledMdes


class MdesQuery:
    """Machine-characterization queries over one compiled description."""

    def __init__(self, compiled: CompiledMdes) -> None:
        self.compiled = compiled
        self._bandwidth_cache: Dict[str, int] = {}
        self._distance_cache: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Same-cycle questions (predication / if-conversion sizing)
    # ------------------------------------------------------------------

    def can_issue_together(self, class_names: Sequence[str]) -> bool:
        """Whether one cycle can hold one operation of each class.

        The question an if-converter asks before merging both sides of a
        branch into one predicated block: do the combined operations
        over-subscribe any cycle's resources?
        """
        ru_map = RUMap()
        checker = ConstraintChecker()
        for class_name in class_names:
            constraint = self.compiled.constraint_for_class(class_name)
            if checker.try_reserve(ru_map, constraint, 0) is None:
                return False
        return True

    def issue_bandwidth(self, class_name: str, limit: int = 64) -> int:
        """How many operations of one class can issue in one cycle.

        E.g. 2 for SuperSPARC non-cascaded IALU operations (two ALUs),
        1 for its loads (one memory port).
        """
        if class_name not in self._bandwidth_cache:
            ru_map = RUMap()
            checker = ConstraintChecker()
            constraint = self.compiled.constraint_for_class(class_name)
            count = 0
            while count < limit:
                if checker.try_reserve(ru_map, constraint, 0) is None:
                    break
                count += 1
            self._bandwidth_cache[class_name] = count
        return self._bandwidth_cache[class_name]

    def cycle_capacity(
        self, class_names: Sequence[str]
    ) -> Optional[List[str]]:
        """The prefix of ``class_names`` that fits into one cycle.

        Returns the classes that issued before the first failure --
        ``None`` if even the first cannot issue (an unsatisfiable class).
        """
        ru_map = RUMap()
        checker = ConstraintChecker()
        placed: List[str] = []
        for class_name in class_names:
            constraint = self.compiled.constraint_for_class(class_name)
            if checker.try_reserve(ru_map, constraint, 0) is None:
                return placed if placed else None
            placed.append(class_name)
        return placed

    # ------------------------------------------------------------------
    # Distance questions (height reduction / combining)
    # ------------------------------------------------------------------

    def min_issue_distance(
        self, first_class: str, second_class: str, horizon: int = 128
    ) -> int:
        """Smallest t >= 0 such that ``second`` may issue t cycles after
        ``first`` on an otherwise empty machine.

        This is the resource-only component of the pair's cost -- what a
        height-reduction transformation weighs against the dependence
        latency when deciding whether restructuring pays.
        """
        key = (first_class, second_class)
        if key not in self._distance_cache:
            first = self.compiled.constraint_for_class(first_class)
            second = self.compiled.constraint_for_class(second_class)
            for distance in range(horizon + 1):
                ru_map = RUMap()
                checker = ConstraintChecker()
                if checker.try_reserve(ru_map, first, 0) is None:
                    raise ValueError(
                        f"class {first_class!r} cannot issue on an empty "
                        "machine"
                    )
                if checker.try_reserve(
                    ru_map, second, distance
                ) is not None:
                    self._distance_cache[key] = distance
                    break
            else:
                raise ValueError(
                    f"no issue distance within {horizon} cycles for "
                    f"({first_class!r}, {second_class!r})"
                )
        return self._distance_cache[key]

    # ------------------------------------------------------------------
    # Pressure questions (region formation)
    # ------------------------------------------------------------------

    def steady_state_throughput(
        self, class_name: str, window: int = 32
    ) -> float:
        """Operations of one class sustainable per cycle, long run.

        Greedily issues the class at every cycle of a window (earliest
        free cycle each time) and reports ops/cycle -- e.g. ~1.0 for a
        pipelined divide-free unit, well below 1.0 when a multi-cycle
        usage serializes (the SuperSPARC divide).
        """
        ru_map = RUMap()
        checker = ConstraintChecker()
        constraint = self.compiled.constraint_for_class(class_name)
        issued = 0
        for cycle in range(window):
            if checker.try_reserve(ru_map, constraint, cycle) is not None:
                issued += 1
        return issued / window

    def resource_summary(self) -> Dict[str, int]:
        """Issue bandwidth of every operation class (a capacity table)."""
        return {
            class_name: self.issue_bandwidth(class_name)
            for class_name in sorted(self.compiled.constraints)
        }
