"""The fault-tolerant parallel batch-scheduling driver.

This is the "serve many scheduling requests fast" architecture: a
workload of basic blocks is split into chunks, the chunks are
dispatched across a ``concurrent.futures`` process pool, and the
results are reassembled in the input order with every worker's
:class:`CheckStats` and :class:`CacheStats` folded back through their
``__iadd__`` merges.

Determinism is the design center, because the differential harness
asserts bit-for-bit identical schedules and identical summed statistics
for 1 worker, N workers, and the plain serial path:

* Chunks are formed purely from the input order and ``chunk_size``;
  results come back keyed by chunk index, so the reassembled schedule
  list is independent of worker scheduling.
* Every chunk gets a **fresh engine instance** over the (shared)
  compiled description.  Engine-level memo state -- the automaton
  backend's transition table -- therefore starts empty per chunk, which
  makes the summed stats a pure function of the chunk partition rather
  than of how chunks happened to land on workers.
* Workers warm up from the persistent disk cache
  (:class:`~repro.engine.diskcache.DiskDescriptionCache`): a fresh
  process ``load_lmdes``'s the compiled description instead of
  re-parsing HMDES and re-running the transformation pipeline, which is
  the paper's ship-the-low-level-file workflow applied to our own pool.

The same properties make the driver *fault-tolerant* without weakening
the contract (:mod:`repro.service.resilience`): a failed chunk
attempt's partial outcome is discarded wholesale and the chunk is
re-dispatched against a fresh engine, so the outcome that finally lands
is byte-identical to a clean run's.  Recovery is layered:

1. **Chunk retries** -- a retryable failure (transient
   ``SchedulingError``, worker crash, timeout, cache corruption)
   consumes one unit of the chunk's :class:`RetryPolicy` budget and the
   chunk is resubmitted after a deterministic backoff.
2. **Pool restarts** -- ``BrokenProcessPool`` (a dead worker) or an
   expired :class:`TimeoutPolicy` budget abandons the pool and
   resubmits every unfinished chunk to a fresh one, at most
   ``max_pool_restarts`` times.
3. **Degradation** -- past that, the run falls back to the in-process
   serial path and finishes there.
4. **Isolation** -- a chunk that exhausts its retry budget is probed
   block by block (fault injection suppressed): deterministically
   failing blocks are quarantined as typed
   :class:`~repro.service.resilience.BlockFailure` records and the
   survivors are re-run as one clean chunk.

Every retry, timeout, restart, degradation, and quarantine emits
``repro.obs`` counters and a ``resilience:*`` span.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.engine import shared
from repro.engine.base import QueryEngine
from repro.engine.cache import CacheStats, DescriptionCache
from repro.engine.diskcache import (
    DiskDescriptionCache,
    is_persistent_token,
    machine_content_token,
)
from repro.engine.registry import create_engine, get_engine_spec
from repro.engine.table import TableEngine
from repro.errors import ChunkTimeoutError, ServiceError, VerificationError
from repro.ir.block import BasicBlock
from repro.lowlevel.checker import CheckStats
from repro.machines import get_machine
from repro.scheduler import ListScheduler, BlockSchedule, schedule_workload
from repro.service import faults
# The request vocabulary lives in repro.service.models; re-exported here
# because BatchConfig grew up in this module and callers import it from
# either place.
from repro.service.models import (
    BatchConfig,
    BatchRequest,
    DEFAULT_BACKEND,
    ON_ERROR_MODES,
)
from repro.service.resilience import (
    BlockFailure,
    RetryPolicy,
    TimeoutPolicy,
    is_retryable,
)
from repro.transforms.pipeline import FINAL_STAGE

logger = logging.getLogger("repro.service.batch")

#: Poll interval for the pool wait loop while a chunk deadline is armed.
_WAIT_TICK = 0.05


@dataclass
class BatchResult:
    """Aggregate outcome of one batch run, in input block order.

    When blocks were quarantined (``on_error="report"``), ``schedules``
    holds the survivors in input order and ``errors`` the typed
    :class:`BlockFailure` records -- one per missing block.
    """

    machine_name: str
    backend: str
    workers: int
    chunk_count: int = 0
    total_ops: int = 0
    total_cycles: int = 0
    schedules: List[BlockSchedule] = field(default_factory=list)
    stats: CheckStats = field(default_factory=CheckStats)
    cache_stats: CacheStats = field(default_factory=CacheStats)
    errors: List[BlockFailure] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    pool_restarts: int = 0
    degraded: bool = False
    #: Whether a shared-memory description segment backed the pool.
    shared_descriptions: bool = False
    #: Summed per-chunk engine-construction time, in seconds -- the
    #: setup cost zero-copy sharing is built to collapse.
    chunk_setup_seconds: float = 0.0
    #: Oracle report when the run asked for ``BatchConfig.verify``.
    verify_report: Optional[Any] = None

    @property
    def attempts_per_op(self) -> float:
        """Average scheduling attempts per operation."""
        return self.stats.attempts / self.total_ops if self.total_ops else 0.0

    @property
    def quarantined(self) -> int:
        """Blocks isolated as deterministic failures."""
        return len(self.errors)

    def signature(self) -> tuple:
        """Digest of every block schedule, in input order."""
        return tuple(schedule.signature() for schedule in self.schedules)


@dataclass
class _ChunkOutcome:
    """What one chunk sends back to the driver (picklable).

    ``spans`` carries the chunk's trace as plain dicts (live spans hold
    thread-local parent pointers and must not cross the pickle
    boundary); the driver grafts them back in chunk order, so the merged
    trace is identical for 1 and N workers.
    """

    index: int
    schedules: List[BlockSchedule]
    stats: CheckStats
    cache_stats: CacheStats
    spans: List[Dict[str, Any]] = field(default_factory=list)
    setup_seconds: float = 0.0


@dataclass
class _ChunkState:
    """Driver-side bookkeeping for one chunk's dispatch lifecycle.

    ``submissions`` counts dispatches (it is the fault-injection attempt
    key and the backoff exponent); ``failures`` counts chunk-level
    failures charged against the retry budget.  A pool restart
    resubmits a chunk without charging its budget -- the chunk was
    never proven bad, its pool was.
    """

    index: int
    blocks: List[BasicBlock]
    offset: int
    submissions: int = 0
    failures: int = 0
    last_error: Optional[BaseException] = None


@dataclass
class _Tally:
    """Recovery-event counts for one run (folded into the result)."""

    retries: int = 0
    timeouts: int = 0
    pool_restarts: int = 0
    degraded: bool = False
    shared: bool = False
    #: Disk-tier activity of the parent's publish compile, which runs
    #: against its own cache -- folded into the result so a shared run
    #: still reports its cold store / warm hit / quarantine counters.
    cache_stats: CacheStats = field(default_factory=CacheStats)


def _chunk_blocks(
    blocks: Sequence[BasicBlock], chunk_size: int
) -> List[List[BasicBlock]]:
    return [
        list(blocks[start : start + chunk_size])
        for start in range(0, len(blocks), chunk_size)
    ]


# ----------------------------------------------------------------------
# Per-chunk execution (runs in the parent or in a pool worker)
# ----------------------------------------------------------------------

#: Per-process description cache for pool workers, created by
#: :func:`_init_worker`.  Forked workers deliberately build their own
#: cache rather than inheriting the parent's, so the disk tier (not a
#: copy-on-write accident) is what makes restarts warm.
_WORKER_CACHE: Optional[DescriptionCache] = None

#: Per-process memo of LMDES files already loaded (path -> compiled).
_LMDES_FILES: dict = {}


def _init_worker(
    cache_dir: Optional[str],
    obs_enabled: bool = False,
    plan: Optional[faults.FaultPlan] = None,
    shared_spec: Optional[shared.SharedDescriptionSpec] = None,
    obs_memory: bool = False,
) -> None:
    global _WORKER_CACHE
    if obs_enabled:
        # Spawned workers start with a fresh module flag; forked ones
        # inherit it.  Either way, make the worker match the parent.
        obs.enable()
    if obs_memory:
        obs.enable_memory()
    faults.install(plan)
    disk = DiskDescriptionCache(cache_dir) if cache_dir else None
    _WORKER_CACHE = DescriptionCache(disk=disk)
    if shared_spec is not None:
        _seed_from_shared(_WORKER_CACHE, disk, shared_spec)


def _seed_from_shared(
    cache: DescriptionCache,
    disk: Optional[DiskDescriptionCache],
    spec: shared.SharedDescriptionSpec,
) -> None:
    """Pre-populate a worker cache from the published segment.

    Attach order: the shared-memory segment first (zero-copy), then the
    disk cache's packed sidecar (one read, no JSON parse), then nothing
    -- the first ``create_engine`` simply takes the normal disk path.
    Seeding touches no counters and no spans, so worker traces and
    folded cache stats keep the exact shapes the differential harness
    pins down.
    """
    compiled = shared.attach(spec)
    if compiled is None and disk is not None:
        blob = disk.load_packed(spec.machine_name, spec.digest)
        if blob is not None:
            from repro.lowlevel.packed import compiled_from_shared_buffer

            try:
                compiled = compiled_from_shared_buffer(blob)
            except Exception:
                logger.exception(
                    "could not decode packed sidecar for %s; "
                    "falling back to the LMDES artifact",
                    spec.machine_name,
                )
                compiled = None
    if compiled is not None:
        cache.seed_compiled(
            spec.machine_name, spec.token, spec.rep, spec.stage,
            spec.bitvector, spec.reduce, compiled,
        )


def _make_engine(
    machine, config: BatchConfig, cache: DescriptionCache
) -> QueryEngine:
    if config.lmdes_path:
        compiled = _LMDES_FILES.get(config.lmdes_path)
        if compiled is None:
            from repro.lowlevel.serialize import load_lmdes

            with open(config.lmdes_path) as handle:
                compiled = load_lmdes(handle.read())
            _LMDES_FILES[config.lmdes_path] = compiled
        return TableEngine(compiled)
    return create_engine(
        config.backend or DEFAULT_BACKEND,
        machine,
        stage=config.stage,
        cache=cache,
    )


def _schedule_chunk(
    machine,
    index: int,
    blocks: List[BasicBlock],
    config: BatchConfig,
    cache: DescriptionCache,
) -> _ChunkOutcome:
    cache_before = cache.stats.copy()
    # The chunk's trace is captured against a detached stack -- also on
    # the serial path -- so driver-side grafting produces one tree shape
    # regardless of the worker count.
    with obs.capture() as captured:
        with obs.span(
            "batch:chunk", memory=True, index=index, blocks=len(blocks)
        ) as sp:
            setup_start = time.perf_counter()
            engine = _make_engine(machine, config, cache)
            setup_seconds = time.perf_counter() - setup_start
            run = schedule_workload(
                machine,
                None,
                blocks,
                keep_schedules=True,
                direction=config.direction,
                engine=engine,
            )
            if obs.enabled():
                sp.set(ops=run.total_ops, attempts=run.stats.attempts)
    return _ChunkOutcome(
        index=index,
        schedules=run.schedules or [],
        stats=run.stats,
        cache_stats=cache.stats.since(cache_before),
        spans=captured.spans,
        setup_seconds=setup_seconds,
    )


def _pool_chunk(
    payload: Tuple[int, int, str, List[BasicBlock], BatchConfig]
) -> _ChunkOutcome:
    index, attempt, machine_name, blocks, config = payload
    assert _WORKER_CACHE is not None, "worker initializer did not run"
    try:
        faults.apply_chunk_faults(
            faults.current_plan(), index, attempt,
            cache_dir=config.cache_dir, in_worker=True,
        )
        return _schedule_chunk(
            get_machine(machine_name), index, blocks, config, _WORKER_CACHE
        )
    except Exception:
        # The pool surfaces only the pickled exception; log the chunk's
        # identity on the worker side before it propagates.
        logger.exception(
            "batch chunk %d (%d blocks, machine %s) failed in worker",
            index, len(blocks), machine_name,
        )
        raise


# ----------------------------------------------------------------------
# Recovery paths (always run in the parent)
# ----------------------------------------------------------------------


def _record_retry(state: _ChunkState, config: BatchConfig,
                  tally: _Tally) -> None:
    """Charge one retry and sleep out the deterministic backoff."""
    tally.retries += 1
    reason = type(state.last_error).__name__
    delay = config.retry.delay(state.index, state.failures)
    logger.warning(
        "retrying batch chunk %d (failure %d/%d, %s) after %.3fs",
        state.index, state.failures, config.retry.retries, reason, delay,
    )
    obs.count(
        "repro_resilience_retries_total",
        help="Chunk retries by failure type.", reason=reason,
    )
    with obs.span(
        "resilience:retry", chunk=state.index,
        failure=state.failures, reason=reason,
    ):
        if delay > 0:
            time.sleep(delay)


def _isolate_chunk(
    machine,
    state: _ChunkState,
    config: BatchConfig,
    cache: DescriptionCache,
) -> Tuple[_ChunkOutcome, List[BlockFailure]]:
    """Quarantine a chunk that failed deterministically across retries.

    Each block is probed on its own engine (fault injection suppressed,
    probe traces discarded): blocks that still fail are quarantined as
    :class:`BlockFailure` records, and the survivors are re-run as one
    clean chunk through the normal path -- so a chunk-level flake that
    exhausted its budget still produces an outcome byte-identical to a
    clean run's.
    """
    failures: List[BlockFailure] = []
    survivors: List[BasicBlock] = []
    with faults.suppressed():
        with obs.span(
            "resilience:isolate", chunk=state.index,
            blocks=len(state.blocks),
        ) as sp:
            with obs.capture():
                # Probe pass: per-block verdicts only; spans and stats
                # from probing are deliberately thrown away.
                for offset, block in enumerate(state.blocks):
                    try:
                        engine = _make_engine(machine, config, cache)
                        ListScheduler(
                            machine, None, direction=config.direction,
                            engine=engine,
                        ).schedule_block(block)
                    except Exception as exc:
                        failures.append(BlockFailure.from_exception(
                            state.offset + offset, machine.name,
                            state.index, state.submissions, exc,
                        ))
                    else:
                        survivors.append(block)
            try:
                outcome = _schedule_chunk(
                    machine, state.index, survivors, config, cache
                )
            except Exception as exc:  # pragma: no cover - probe passed
                logger.exception(
                    "isolated chunk %d failed its clean re-run",
                    state.index,
                )
                failures = [
                    BlockFailure.from_exception(
                        state.offset + offset, machine.name,
                        state.index, state.submissions, exc,
                    )
                    for offset in range(len(state.blocks))
                ]
                outcome = _ChunkOutcome(
                    state.index, [], CheckStats(), CacheStats()
                )
            if obs.enabled():
                sp.set(quarantined=len(failures))
    for failure in failures:
        logger.error(
            "quarantined block %d (chunk %d, machine %s) after %d "
            "attempt(s): %s: %s",
            failure.block_index, failure.chunk_index, failure.machine,
            failure.attempts, failure.error_type, failure.message,
        )
    obs.count(
        "repro_resilience_quarantined_blocks_total", len(failures),
        help="Blocks isolated as deterministic failures.",
    )
    return outcome, failures


def _run_serial(
    machine,
    states: List[_ChunkState],
    config: BatchConfig,
    plan: Optional[faults.FaultPlan],
    cache: DescriptionCache,
    outcomes: Dict[int, _ChunkOutcome],
    block_failures: List[BlockFailure],
    tally: _Tally,
) -> None:
    """The in-process path: one chunk at a time, retries and isolation.

    Also serves as the degradation target when the pool path gives up.
    Timeout budgets are not enforced here: a hung chunk cannot be
    preempted from its own thread (see :class:`TimeoutPolicy`).
    """
    for state in states:
        while True:
            attempt = state.submissions
            state.submissions += 1
            try:
                faults.apply_chunk_faults(
                    plan, state.index, attempt,
                    cache_dir=config.cache_dir, in_worker=False,
                )
                outcomes[state.index] = _schedule_chunk(
                    machine, state.index, state.blocks, config, cache
                )
                break
            except Exception as exc:
                state.last_error = exc
                state.failures += 1
                if is_retryable(exc) and \
                        state.failures <= config.retry.retries:
                    _record_retry(state, config, tally)
                    continue
                outcome, failures = _isolate_chunk(
                    machine, state, config, cache
                )
                outcomes[state.index] = outcome
                block_failures.extend(failures)
                break


def _shutdown_abandoned_pool(pool: ProcessPoolExecutor) -> None:
    """Tear down a pool we no longer trust without waiting on it.

    A hung worker would make ``shutdown(wait=True)`` block for the
    duration of the hang, so the workers are terminated outright; the
    ``_processes`` attribute is stdlib-private but has been the only
    handle on pool workers since 3.7, and termination is best-effort by
    design (an already-dead worker is fine).
    """
    try:
        processes = list((pool._processes or {}).values())
    except Exception:  # pragma: no cover - platform-dependent cleanup
        processes = []
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-dead worker
            logger.warning(
                "could not terminate abandoned pool worker %r", process
            )


def _sharing_enabled(
    config: BatchConfig, plan: Optional[faults.FaultPlan]
) -> bool:
    """Whether this run may publish a shared description segment.

    ``lmdes_path`` runs already have their compact artifact on disk per
    worker, and cache-corruption fault profiles exist precisely to
    drive the disk tier's quarantine path -- seeding workers past the
    disk would mask the behaviour those runs are asserting.
    """
    if not config.shared_descriptions or config.lmdes_path:
        return False
    if plan is not None and any(
        rule.kind == "corrupt" for rule in plan.rules
    ):
        return False
    return shared.available()


def _publish_shared(
    machine, config: BatchConfig, tally: _Tally,
    cache: Optional[DescriptionCache] = None,
) -> Optional[shared.SharedDescriptionSpec]:
    """Compile once in the parent and publish the segment (best effort).

    The compile runs against a discarded trace capture: the parent's
    span tree must stay identical whether or not sharing kicked in
    (span-merge determinism is asserted across worker counts).  When a
    persistent disk tier is attached, the packed bytes are also
    written through as a ``.packed.bin`` sidecar, so even a worker that
    cannot attach shared memory skips the JSON parse.

    A caller-lent long-lived ``cache`` (the server's warm cache) is
    used as-is -- a warm hit publishes without recompiling -- and only
    this call's stats *delta* is folded into the tally, so a cache that
    outlives many runs is never double-counted.
    """
    try:
        spec = get_engine_spec(config.backend or DEFAULT_BACKEND)
    except KeyError:
        return None
    if config.stage < spec.min_stage:
        return None  # the worker raises the typed error on its own
    token = machine_content_token(machine)
    if not is_persistent_token(token):
        return None
    try:
        if cache is None:
            disk = (
                DiskDescriptionCache(config.cache_dir)
                if config.cache_dir else None
            )
            cache = DescriptionCache(disk=disk)
        else:
            disk = cache.disk
        before = cache.stats.copy()
        try:
            with obs.capture():
                compiled = cache.compiled(
                    machine, spec.rep, config.stage, spec.bitvector,
                    reduce=spec.reduce,
                )
        finally:
            tally.cache_stats += cache.stats.since(before)
        published = shared.publish(
            compiled, machine.name, token, spec.rep, config.stage,
            spec.bitvector, spec.reduce,
        )
        if published is not None and disk is not None:
            from repro.lowlevel.packed import compiled_to_shared_bytes

            disk.store_packed(
                machine.name, published.digest,
                compiled_to_shared_bytes(compiled),
            )
        return published
    except Exception:
        logger.exception(
            "could not publish a shared description for %s; workers "
            "will warm up from the disk tier", machine.name,
        )
        return None


def _run_pooled(
    machine,
    states: List[_ChunkState],
    config: BatchConfig,
    plan: Optional[faults.FaultPlan],
    outcomes: Dict[int, _ChunkOutcome],
    block_failures: List[BlockFailure],
    tally: _Tally,
    cache: Optional[DescriptionCache] = None,
) -> None:
    """The pool path: dispatch, watch deadlines, recover, reassemble.

    Pool generations run until every chunk has an outcome or is bound
    for isolation; ``BrokenProcessPool`` and chunk timeouts abandon the
    generation and resubmit the survivors to a fresh pool, bounded by
    ``retry.max_pool_restarts``, after which the run degrades to the
    serial path.

    A shared description segment, when published, lives exactly as long
    as this call: every pool generation reuses it (restart recovery
    stays warm) and the ``finally`` below releases it even when the
    run degrades or raises -- no ``/dev/shm`` segment survives the
    driver.
    """
    shared_spec = (
        _publish_shared(machine, config, tally, cache=cache)
        if _sharing_enabled(config, plan) else None
    )
    tally.shared = shared_spec is not None
    try:
        _run_pooled_generations(
            machine, states, config, plan, outcomes, block_failures,
            tally, shared_spec,
        )
    finally:
        shared.release(shared_spec)


def _run_pooled_generations(
    machine,
    states: List[_ChunkState],
    config: BatchConfig,
    plan: Optional[faults.FaultPlan],
    outcomes: Dict[int, _ChunkOutcome],
    block_failures: List[BlockFailure],
    tally: _Tally,
    shared_spec: Optional[shared.SharedDescriptionSpec],
) -> None:
    policy = config.retry
    budget = config.timeout.chunk_seconds
    pending: Dict[int, _ChunkState] = {s.index: s for s in states}
    to_isolate: List[_ChunkState] = []

    def submit(pool, futures, deadlines, state) -> None:
        attempt = state.submissions
        state.submissions += 1
        future = pool.submit(
            _pool_chunk,
            (state.index, attempt, machine.name, state.blocks, config),
        )
        futures[future] = state
        if budget:
            deadlines[future] = time.monotonic() + budget

    while pending:
        if tally.pool_restarts > policy.max_pool_restarts:
            tally.degraded = True
            logger.error(
                "degrading to the serial path after %d pool failure(s); "
                "%d chunk(s) remaining",
                tally.pool_restarts, len(pending),
            )
            obs.count(
                "repro_resilience_degradations_total",
                help="Batch runs degraded from the pool to serial.",
            )
            with obs.span(
                "resilience:degrade", remaining=len(pending),
                pool_restarts=tally.pool_restarts,
            ):
                cache = DescriptionCache(
                    disk=DiskDescriptionCache(config.cache_dir)
                    if config.cache_dir else None
                )
                _run_serial(
                    machine,
                    sorted(pending.values(), key=lambda s: s.index),
                    config, plan, cache, outcomes, block_failures, tally,
                )
            pending.clear()
            break

        pool = ProcessPoolExecutor(
            max_workers=config.workers,
            initializer=_init_worker,
            initargs=(config.cache_dir, obs.enabled(), plan, shared_spec,
                      obs.memory_enabled()),
        )
        broken = False
        futures: Dict[Any, _ChunkState] = {}
        deadlines: Dict[Any, float] = {}
        try:
            for state in sorted(pending.values(), key=lambda s: s.index):
                submit(pool, futures, deadlines, state)
            while futures and not broken:
                done, _ = wait(
                    set(futures),
                    timeout=_WAIT_TICK if budget else None,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    state = futures.pop(future)
                    deadlines.pop(future, None)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        broken = True
                        break
                    except Exception as exc:
                        state.last_error = exc
                        state.failures += 1
                        if is_retryable(exc) and \
                                state.failures <= policy.retries:
                            _record_retry(state, config, tally)
                            submit(pool, futures, deadlines, state)
                        else:
                            pending.pop(state.index, None)
                            to_isolate.append(state)
                    else:
                        pending.pop(state.index, None)
                        outcomes[state.index] = outcome
                if broken or not budget:
                    continue
                now = time.monotonic()
                expired = [
                    future for future, deadline in deadlines.items()
                    if now >= deadline and not future.done()
                ]
                for future in expired:
                    state = futures.pop(future)
                    deadlines.pop(future, None)
                    state.last_error = ChunkTimeoutError(
                        f"chunk {state.index} exceeded its "
                        f"{budget:g}s budget"
                    )
                    state.failures += 1
                    tally.timeouts += 1
                    logger.warning(
                        "batch chunk %d timed out after %gs "
                        "(failure %d/%d); abandoning the pool",
                        state.index, budget, state.failures,
                        policy.retries,
                    )
                    obs.count(
                        "repro_resilience_timeouts_total",
                        help="Chunk dispatches that exceeded their "
                             "wall-clock budget.",
                    )
                    with obs.span("resilience:timeout",
                                  chunk=state.index):
                        pass
                    if state.failures > policy.retries:
                        pending.pop(state.index, None)
                        to_isolate.append(state)
                    # A timed-out future cannot be cancelled (its
                    # worker is wedged), so the whole generation is
                    # abandoned; other in-flight chunks stay pending
                    # without being charged.
                    broken = True
        except BrokenProcessPool:
            broken = True
        if broken:
            tally.pool_restarts += 1
            obs.count(
                "repro_resilience_pool_restarts_total",
                help="Fresh pools built after worker death or timeout.",
            )
            with obs.span(
                "resilience:pool-restart",
                restart=tally.pool_restarts, remaining=len(pending),
            ):
                _shutdown_abandoned_pool(pool)
        else:
            pool.shutdown(wait=True)

    if to_isolate:
        cache = DescriptionCache(
            disk=DiskDescriptionCache(config.cache_dir)
            if config.cache_dir else None
        )
        for state in sorted(to_isolate, key=lambda s: s.index):
            outcome, failures = _isolate_chunk(
                machine, state, config, cache
            )
            outcomes[state.index] = outcome
            block_failures.extend(failures)


# ----------------------------------------------------------------------
# The driver
# ----------------------------------------------------------------------


def _resolve_machine(machine: Union[str, object], parallel: bool):
    if isinstance(machine, str):
        return get_machine(machine)
    if parallel:
        # Workers rebuild the machine from the registry by name; an
        # unregistered (or same-named but different) machine would
        # silently schedule against the wrong description.
        try:
            registered = get_machine(machine.name)
        except KeyError:
            registered = None
        if registered is None or machine_content_token(
            registered
        ) != machine_content_token(machine):
            raise ValueError(
                "parallel batch scheduling needs a registered machine "
                f"name; {machine.name!r} does not match the registry"
            )
    return machine


def schedule_batch(
    machine: Union[str, object, BatchRequest],
    blocks: Optional[Sequence[BasicBlock]] = None,
    config: Optional[BatchConfig] = None,
    *,
    cache: Optional[DescriptionCache] = None,
) -> BatchResult:
    """Schedule a workload of blocks, sharded across a process pool.

    The first argument is either a validated
    :class:`~repro.service.models.BatchRequest` (the canonical calling
    convention -- ``blocks`` and ``config`` must then be omitted), or a
    registered machine name / :class:`~repro.machines.base.Machine`
    with the blocks and config passed alongside.  Parallel runs require
    the machine to resolve through the registry so workers can rebuild
    it.  Results come back in input block order regardless of worker
    count, and the summed statistics are identical for any ``workers``
    value.

    ``cache`` lends the run a long-lived description cache (the server
    tier's warm process-wide cache) instead of the per-call default;
    the in-process path schedules straight out of it and the pool path
    publishes its shared segment from it, so a description compiles at
    most once across every request that shares the cache.

    Recoverable faults (worker death, chunk timeouts, transient
    scheduling errors, corrupt cache entries) are retried under
    ``config.retry`` / ``config.timeout`` without changing the result;
    blocks that fail deterministically are quarantined and either
    reported (``on_error="report"``) or raised as a
    :class:`~repro.errors.ServiceError` (``on_error="raise"``).
    """
    if isinstance(machine, BatchRequest):
        if blocks is not None or config is not None:
            raise TypeError(
                "schedule_batch(BatchRequest) takes no separate "
                "blocks/config arguments"
            )
        request = machine.validate()
        machine = request.machine
        blocks = request.resolve_blocks()
        config = request.effective_config()
    config = config or BatchConfig()
    config.validate()
    machine = _resolve_machine(machine, parallel=config.workers > 1)
    plan = faults.current_plan()
    block_list = list(blocks)
    chunks = _chunk_blocks(block_list, config.chunk_size)
    states = [
        _ChunkState(
            index=index, blocks=chunk, offset=index * config.chunk_size
        )
        for index, chunk in enumerate(chunks)
    ]

    outcomes: Dict[int, _ChunkOutcome] = {}
    block_failures: List[BlockFailure] = []
    tally = _Tally()
    with obs.span(
        "service:batch", memory=True, machine=machine.name,
        backend=config.backend_label, workers=config.workers,
        chunks=len(chunks),
    ) as sp:
        if config.workers == 1:
            if cache is None:
                cache = DescriptionCache(
                    disk=DiskDescriptionCache(config.cache_dir)
                    if config.cache_dir else None
                )
            _run_serial(
                machine, states, config, plan, cache,
                outcomes, block_failures, tally,
            )
        else:
            _run_pooled(
                machine, states, config, plan,
                outcomes, block_failures, tally, cache=cache,
            )

        result = BatchResult(
            machine_name=machine.name,
            backend=config.backend_label,
            workers=config.workers,
            chunk_count=len(chunks),
            retries=tally.retries,
            timeouts=tally.timeouts,
            pool_restarts=tally.pool_restarts,
            degraded=tally.degraded,
            shared_descriptions=tally.shared,
        )
        result.cache_stats += tally.cache_stats
        # Chunk order, not completion order: the stats fold, the
        # schedule list, and the grafted trace must not depend on pool
        # timing.
        for index in sorted(outcomes):
            outcome = outcomes[index]
            result.schedules.extend(outcome.schedules)
            result.stats += outcome.stats
            result.cache_stats += outcome.cache_stats
            result.chunk_setup_seconds += outcome.setup_seconds
            obs.attach(outcome.spans)
        result.errors = sorted(
            block_failures, key=lambda f: f.block_index
        )
        result.total_ops = sum(len(s.block) for s in result.schedules)
        result.total_cycles = sum(s.length for s in result.schedules)
        if obs.enabled():
            sp.set(ops=result.total_ops, cycles=result.total_cycles)
            obs.count(
                "repro_batch_chunks_total", len(chunks),
                help="Chunks dispatched by the batch service.",
                backend=config.backend_label,
            )
            obs.count(
                "repro_batch_runs_total",
                help="Batch-service runs.",
                backend=config.backend_label,
            )
    if obs.enabled():
        obs.observe(
            "repro_batch_seconds", sp.seconds,
            help="Wall seconds per batch-service run.",
            backend=config.backend_label,
        )
    if config.verify:
        # Late import: repro.verify sits above the service layer.
        from repro.verify import verify_schedule

        with obs.span(
            "verify:batch", machine=machine.name,
            blocks=len(result.schedules),
        ):
            result.verify_report = verify_schedule(
                machine, result.schedules, direction=config.direction
            )
        obs.count(
            "repro_verify_batch_runs_total",
            help="Batch runs verified by the oracle.",
            ok=str(result.verify_report.ok).lower(),
        )
    if result.errors and config.on_error == "raise":
        raise ServiceError(
            f"{len(result.errors)} block(s) quarantined out of "
            f"{len(block_list)} on {machine.name}",
            failures=result.errors,
        )
    if (
        result.verify_report is not None
        and not result.verify_report.ok
        and config.on_error == "raise"
    ):
        raise VerificationError(
            f"oracle rejected {machine.name} batch: "
            f"{len(result.verify_report.diagnostics)} diagnostic(s) "
            f"over {result.verify_report.blocks_checked} block(s)",
            report=result.verify_report,
        )
    return result
