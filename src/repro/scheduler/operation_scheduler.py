"""Operation scheduling: priority-order placement with backtracking.

The paper (section 4) names *operation scheduling* alongside iterative
modulo scheduling as an advanced technique that raises the number of
scheduling attempts per operation -- and (section 10) as one that needs
to "unschedule operations in order to remove the resource conflicts that
are preventing an operation from being scheduled", which reservation
tables support directly.

Unlike the cycle/list scheduler, operations are placed strictly in
priority order, regardless of dependence readiness: a high-priority
operation claims its preferred slot first, and may *evict* already placed
lower-priority operations that block it, either through a resource
conflict or by squeezing its dependence window shut.  Evicted operations
re-enter the queue.  A budget bounds the total work.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.engine.base import QueryEngine, Reservation
from repro.engine.table import TableEngine
from repro.errors import SchedulingError
from repro.ir.block import BasicBlock
from repro.ir.dependence import build_dependence_graph
from repro.lowlevel.checker import CheckStats
from repro.lowlevel.compiled import CompiledMdes
from repro.scheduler.priority import compute_heights
from repro.scheduler.schedule import BlockSchedule

#: How many cycles past the window an operation may slide while probing.
PROBE_WINDOW = 64


@dataclass
class OperationSchedulerResult:
    """A block schedule plus the backtracking work it took."""

    schedule: BlockSchedule
    evictions: int
    stats: CheckStats


class OperationScheduler:
    """Backtracking scheduler over one compiled machine description."""

    def __init__(self, machine, compiled: Optional[CompiledMdes] = None,
                 budget_ratio: int = 12, priority_fn=None,
                 engine: Optional[QueryEngine] = None) -> None:
        """``priority_fn(graph, block) -> {index: key}`` overrides the
        default critical-path priority; *smaller* keys schedule first
        (keys may be tuples).  With critical-path heights the placement
        order is topological and backtracking is rare; a non-topological
        priority (e.g. "memory operations last") is what makes
        operations fight over slots and triggers eviction."""
        if engine is None:
            if compiled is None:
                raise SchedulingError(
                    "OperationScheduler needs a compiled MDES or an engine"
                )
            engine = TableEngine(compiled)
        self.machine = machine
        self.engine = engine
        self.budget_ratio = budget_ratio
        self.priority_fn = priority_fn

    @property
    def stats(self) -> CheckStats:
        """The constraint-check statistics accumulated so far."""
        return self.engine.stats

    def schedule_block(self, block: BasicBlock) -> OperationSchedulerResult:
        """Schedule one block in pure priority order."""
        from repro import obs

        with obs.span(
            "schedule:operation", machine=self.machine.name,
            backend=self.engine.name, ops=len(block),
        ) as span:
            outcome = self._schedule_block(block)
        if obs.enabled():
            span.set(evictions=outcome.evictions,
                     attempts=outcome.stats.attempts)
            obs.count(
                "repro_operation_scheduler_evictions_total",
                outcome.evictions,
                help="Operations unscheduled by eviction heuristics.",
                machine=self.machine.name,
            )
            obs.observe(
                "repro_schedule_seconds", span.seconds,
                help="Wall seconds per workload scheduling run.",
                scheduler="operation", backend=self.engine.name,
            )
        return outcome

    def _schedule_block(self, block: BasicBlock) -> OperationSchedulerResult:
        graph = build_dependence_graph(block, self.machine.latency)
        if self.priority_fn is not None:
            order_keys = self.priority_fn(graph, block)
        else:
            heights = compute_heights(graph)
            order_keys = {
                index: (-height, index)
                for index, height in heights.items()
            }
        ops_by_index = {op.index: op for op in block}
        engine = self.engine
        ru_map = engine.new_state()
        stats_before = engine.stats.copy()
        times: Dict[int, int] = {}
        handles: Dict[int, Reservation] = {}
        previous_time: Dict[int, int] = {}
        evictions = 0

        def unschedule(index: int) -> None:
            engine.release(handles.pop(index))
            previous_time[index] = times.pop(index)

        def window(index: int) -> Tuple[int, Optional[int]]:
            earliest = 0
            latest: Optional[int] = None
            for edge in graph.preds_of(index):
                if edge.pred in times:
                    earliest = max(
                        earliest, times[edge.pred] + edge.latency
                    )
            for edge in graph.succs_of(index):
                if edge.succ in times:
                    bound = times[edge.succ] - edge.latency
                    latest = bound if latest is None else min(
                        latest, bound
                    )
            return earliest, latest

        queue: List[Tuple[object, int]] = [
            (order_keys[op.index], op.index) for op in block
        ]
        heapq.heapify(queue)
        budget = self.budget_ratio * len(block)
        steps = 0
        while queue:
            steps += 1
            if steps > budget:
                raise SchedulingError(
                    f"operation scheduler exceeded its budget on "
                    f"{block!r}"
                )
            _, index = heapq.heappop(queue)
            if index in times:
                continue
            op = ops_by_index[index]
            class_name = self.machine.classify(op, False)
            constraint = engine.constraint_for_class(class_name)
            earliest, latest = window(index)
            if index in previous_time:
                # Rescheduled operations move strictly later (Rau's
                # monotonic rule): this is what guarantees progress and
                # prevents eviction livelock.
                earliest = max(earliest, previous_time[index] + 1)

            if latest is not None and latest < earliest:
                # The dependence window is shut: evict exactly the
                # successors imposing bounds below ``earliest``.  The
                # surviving successors all allow ``earliest`` or later,
                # so one pass reopens the window.
                for edge in graph.succs_of(index):
                    if edge.succ in times and (
                        times[edge.succ] - edge.latency < earliest
                    ):
                        unschedule(edge.succ)
                        heapq.heappush(
                            queue, (order_keys[edge.succ], edge.succ)
                        )
                        evictions += 1
                earliest, latest = window(index)

            bound = latest if latest is not None else (
                earliest + PROBE_WINDOW
            )
            handle = engine.try_reserve_many(
                ru_map, class_name, range(earliest, bound + 1)
            )
            if handle is not None:
                times[index] = handle.cycle
                handles[index] = handle
            else:
                # Resource-forced: evict everything overlapping the
                # preferred slot and take it.
                for other in [i for i in list(times)]:
                    if self._conflicts(
                        handles[other], constraint, earliest
                    ):
                        unschedule(other)
                        heapq.heappush(queue, (order_keys[other], other))
                        evictions += 1
                handle = engine.try_reserve(ru_map, class_name, earliest)
                if handle is None:
                    raise SchedulingError(
                        f"operation {op!r}: eviction failed to free "
                        f"cycle {earliest}"
                    )
                times[index] = earliest
                handles[index] = handle

        result = BlockSchedule(block)
        result.times = times
        result.classes = {
            index: self.machine.classify(ops_by_index[index], False)
            for index in times
        }
        self._validate(graph, result)
        return OperationSchedulerResult(
            result, evictions, engine.stats.since(stats_before)
        )

    @staticmethod
    def _conflicts(
        handle: Reservation, constraint, issue_cycle: int
    ) -> bool:
        """Whether a reservation overlaps *any* option of a constraint."""
        from repro.lowlevel.compiled import CompiledAndOrTree

        or_trees = (
            constraint.or_trees
            if isinstance(constraint, CompiledAndOrTree)
            else (constraint,)
        )
        for or_tree in or_trees:
            for option in or_tree.options:
                for time, mask in option.reserve_mask_by_time:
                    for cycle, held in handle:
                        if cycle == issue_cycle + time and held & mask:
                            return True
        return False

    @staticmethod
    def _validate(graph, schedule: BlockSchedule) -> None:
        for edges in graph.succs.values():
            for edge in edges:
                if (
                    schedule.times[edge.succ]
                    < schedule.times[edge.pred] + edge.latency
                ):
                    raise SchedulingError(
                        f"operation schedule violates {edge}"
                    )
