"""Tests for the experiment suite (a small-scale end-to-end pass).

These verify the *structure* of every regenerated table and the paper's
qualitative claims; the benchmarks regenerate them at full scale.
"""

import pytest

from repro.analysis.experiments import ANDOR_REP, OR_REP
from repro.transforms.pipeline import staged_mdes
from repro.machines import MACHINE_NAMES, get_machine


class TestStaging:
    def test_stage_bounds(self):
        base = get_machine("SuperSPARC").build_andor()
        with pytest.raises(ValueError):
            staged_mdes(base, 5)
        with pytest.raises(ValueError):
            staged_mdes(base, -1)

    def test_stage0_is_input(self):
        base = get_machine("SuperSPARC").build_andor()
        assert staged_mdes(base, 0) is base

    def test_stage1_removes_dead_trees(self):
        base = get_machine("SuperSPARC").build_andor()
        assert staged_mdes(base, 1).unused_trees == {}


class TestTables(object):
    def test_table1_rows_match_table(self, small_suite):
        rows = small_suite.option_breakdown("SuperSPARC")
        option_counts = [row[0] for row in rows]
        assert option_counts == [1, 3, 6, 12, 24, 36, 48, 72]
        shares = [row[1] for row in rows]
        assert abs(sum(shares) - 100.0) < 1e-6
        # The 48-option IALU row dominates, as in the paper (50.29%).
        assert max(shares) == shares[option_counts.index(48)]

    def test_table4_rows_match_table(self, small_suite):
        rows = small_suite.option_breakdown("K5")
        assert [row[0] for row in rows] == [
            16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 768
        ]

    def test_table5_andor_wins_for_complex_machines(self, small_suite):
        rows = {row[0]: row for row in small_suite.table5_rows()}
        for name in ("SuperSPARC", "K5"):
            _, _, _, or_opts, or_checks, ao_opts, ao_checks, _ = rows[name]
            assert ao_checks < or_checks / 2
            assert ao_opts < or_opts
        # Pentium: identical (no AND/OR structure).
        _, _, _, or_opts, or_checks, ao_opts, ao_checks, _ = rows["Pentium"]
        assert ao_checks == pytest.approx(or_checks)

    def test_table6_andor_smaller_for_complex_machines(self, small_suite):
        rows = {row[0]: row for row in small_suite.table6_rows()}
        for name in ("SuperSPARC", "K5"):
            assert rows[name][5] < rows[name][3] / 5
        # Pentium grows slightly (the AND-node overhead).
        assert rows["Pentium"][5] > rows["Pentium"][3]

    def test_table7_sizes_never_grow(self, small_suite):
        t6 = {row[0]: row for row in small_suite.table6_rows()}
        for row in small_suite.table7_rows():
            name = row[0]
            assert row[3] <= t6[name][3]  # OR bytes
            assert row[6] <= t6[name][5]  # AND/OR bytes

    def test_table8_pa7100_options_drop(self, small_suite):
        rows = small_suite.table8_rows()
        or_row = rows[0]
        assert or_row[3] <= or_row[1]  # options/attempt after <= before

    def test_table9_bitvector_never_grows(self, small_suite):
        for row in small_suite.table9_rows():
            assert row[2] <= row[1]
            assert row[5] <= row[4]

    def test_table10_pentium_benefits_most(self, small_suite):
        rows = {row[0]: row for row in small_suite.table10_rows()}
        pentium_cut = rows["Pentium"][1] - rows["Pentium"][2]
        sparc_cut = rows["SuperSPARC"][1] - rows["SuperSPARC"][2]
        assert pentium_cut / rows["Pentium"][1] > \
            sparc_cut / rows["SuperSPARC"][1]

    def test_table12_checks_per_option_near_one(self, small_suite):
        for row in small_suite.table12_rows():
            assert row[4] <= 1.25  # OR checks/option
            assert row[8] <= 1.25  # AND/OR checks/option

    def test_table13_reordering_helps_complex_machines(self, small_suite):
        rows = {row[0]: row for row in small_suite.table13_rows()}
        for name in ("SuperSPARC", "K5"):
            assert rows[name][2] < rows[name][1]  # options drop
        for name in ("PA7100", "Pentium"):
            assert rows[name][2] == pytest.approx(rows[name][1])

    def test_table14_aggregate_size(self, small_suite):
        rows = {row[0]: row for row in small_suite.table14_rows()}
        # Combined transforms + AND/OR: ~100x smaller for the K5.
        assert rows["K5"][4] < rows["K5"][1] / 50
        assert rows["SuperSPARC"][4] < rows["SuperSPARC"][1] / 10

    def test_table15_aggregate_checks(self, small_suite):
        rows = {row[0]: row for row in small_suite.table15_rows()}
        # Up to a factor of ten fewer checks (paper's headline claim).
        assert rows["SuperSPARC"][4] < rows["SuperSPARC"][1] / 5
        assert rows["K5"][4] < rows["K5"][1] / 5

    def test_all_tables_renders(self, small_suite):
        text = small_suite.all_tables()
        for number in range(1, 16):
            assert f"Table {number}" in text


class TestFigures:
    def test_fig1_six_options(self, small_suite):
        text = small_suite.fig1_load_reservation_tables()
        assert text.count("Option") == 6

    def test_fig2_histogram(self, small_suite):
        text = small_suite.fig2_options_distribution()
        assert "% of attempts" in text

    def test_fig3_both_representations(self, small_suite):
        text = small_suite.fig3_representations()
        assert "OR-tree" in text and "AND/OR-tree" in text

    def test_fig4_sharing(self, small_suite):
        text = small_suite.fig4_sharing()
        assert "shared" in text

    def test_fig5_shifted_times_nonnegative(self, small_suite):
        text = small_suite.fig5_shifted_load()
        assert "-1 |" not in text

    def test_fig6_order_changes(self, small_suite):
        text = small_suite.fig6_tree_order()
        assert "original order" in text
        assert "after optimizing" in text


class TestInvariance:
    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_same_schedule_everywhere(self, small_suite, machine_name):
        """The paper's core invariant (section 4): every representation
        and every transformation stage produces the exact same schedule."""
        assert small_suite.verify_schedule_invariance(machine_name)
