"""Experiment suite: regenerate every table and figure of the paper.

The paper applies its transformations incrementally and reports each
stage; :class:`ExperimentSuite` reproduces that staging:

======  ==========================================================
stage   description
======  ==========================================================
0       original description (Tables 5 and 6, figures 1-3)
1       + redundancy elimination, dead-code removal, and
        dominated-option removal (Tables 7 and 8, figure 4)
2       stage 1 compiled with bit-vector packing (Tables 9 and 10)
3       + usage-time shifting and zero-first usage sorting
        (Tables 11 and 12, figure 5)
4       + common-usage factoring and AND/OR-tree ordering
        (Table 13, figure 6)
======  ==========================================================

Tables 14 and 15 compare stage 0 against stage 4 end to end.

Every run of one machine schedules the *same* synthetic workload, so the
per-attempt statistics are directly comparable -- and the suite verifies
the paper's invariant that every representation and stage produces the
exact same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import format_table, reduction_pct
from repro.core.expand import as_or_tree
from repro.core.mdes import Mdes
from repro.engine.cache import GLOBAL_CACHE, DescriptionCache
from repro.lowlevel.compiled import CompiledMdes
from repro.lowlevel.layout import mdes_size_bytes
from repro.machines import MACHINE_NAMES, get_machine
from repro.scheduler import RunResult, schedule_workload
from repro.transforms.pipeline import FINAL_STAGE as _FINAL_STAGE
from repro.workloads import WorkloadConfig, generate_blocks

__all__ = [
    "ANDOR_REP",
    "ExperimentSuite",
    "FINAL_STAGE",  # deprecated shim; lives in repro.transforms.pipeline
    "OR_REP",
    "staged_mdes",  # deprecated shim; lives in repro.transforms.pipeline
]


def __getattr__(name):
    # Legacy import site: staged_mdes/FINAL_STAGE moved to
    # repro.transforms.pipeline (PR 1).  Served through a warning shim
    # so downstream imports keep working one more cycle before the
    # aliases are dropped.
    if name in ("staged_mdes", "FINAL_STAGE"):
        from repro import _compat
        from repro.transforms import pipeline

        return _compat.deprecated_reexport(
            __name__, name, "repro.transforms.pipeline",
            getattr(pipeline, name),
        )
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


#: Representations compared throughout the paper.
OR_REP = "or"
ANDOR_REP = "andor"


@dataclass
class ExperimentSuite:
    """Caches workloads, staged descriptions, compilations, and runs."""

    total_ops: int = 20000
    seed: int = 20161202
    keep_schedules: bool = False
    #: Staged trees and compilations come from the process-wide LRU
    #: description cache, so repeated suites (and the CLI, and the
    #: benchmarks) share one set of compiled descriptions.
    cache: DescriptionCache = field(default=GLOBAL_CACHE, repr=False)
    _workloads: Dict[str, list] = field(default_factory=dict, repr=False)
    _runs: Dict[Tuple[str, str, int, bool], RunResult] = field(
        default_factory=dict, repr=False
    )

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------

    def workload(self, machine_name: str) -> list:
        """The machine's synthetic workload (cached)."""
        if machine_name not in self._workloads:
            machine = get_machine(machine_name)
            self._workloads[machine_name] = generate_blocks(
                machine,
                WorkloadConfig(total_ops=self.total_ops, seed=self.seed),
            )
        return self._workloads[machine_name]

    def mdes(self, machine_name: str, rep: str, stage: int) -> Mdes:
        """The staged description in one representation (cached)."""
        return self.cache.mdes(get_machine(machine_name), rep, stage)

    def compiled(
        self, machine_name: str, rep: str, stage: int, bitvector: bool
    ) -> CompiledMdes:
        """The compiled staged description (cached)."""
        return self.cache.compiled(
            get_machine(machine_name), rep, stage, bitvector
        )

    def size(
        self, machine_name: str, rep: str, stage: int, bitvector: bool
    ) -> int:
        """Representation size in bytes under the layout model."""
        return mdes_size_bytes(
            self.compiled(machine_name, rep, stage, bitvector)
        )

    def run(
        self, machine_name: str, rep: str, stage: int, bitvector: bool
    ) -> RunResult:
        """Schedule the machine's workload against one configuration."""
        key = (machine_name, rep, stage, bitvector)
        if key not in self._runs:
            machine = get_machine(machine_name)
            self._runs[key] = schedule_workload(
                machine,
                self.compiled(machine_name, rep, stage, bitvector),
                self.workload(machine_name),
                keep_schedules=self.keep_schedules,
            )
        return self._runs[key]

    # ------------------------------------------------------------------
    # Figures 1 and 3: the SuperSPARC integer load
    # ------------------------------------------------------------------

    def fig1_load_reservation_tables(self) -> str:
        """Figure 1: the six reservation tables of the integer load."""
        from repro.analysis.figures import render_or_tree

        mdes = self.mdes("SuperSPARC", OR_REP, 0)
        constraint = as_or_tree(mdes.op_class("load").constraint)
        return render_or_tree(constraint, label="SuperSPARC integer load")

    def fig3_representations(self) -> str:
        """Figure 3: OR-tree versus AND/OR-tree for the integer load."""
        from repro.analysis.figures import (
            render_and_or_tree,
            render_or_tree,
        )

        or_form = as_or_tree(
            self.mdes("SuperSPARC", OR_REP, 0).op_class("load").constraint
        )
        andor_form = self.mdes("SuperSPARC", ANDOR_REP, 0).op_class(
            "load"
        ).constraint
        return "\n\n".join(
            [
                "(a) traditional OR-tree:",
                render_or_tree(or_form, label="integer load"),
                "(b) AND/OR-tree:",
                render_and_or_tree(andor_form, label="integer load"),
            ]
        )

    # ------------------------------------------------------------------
    # Tables 1-4: option breakdowns and attempt shares
    # ------------------------------------------------------------------

    def option_breakdown(self, machine_name: str) -> List[Tuple[int, float, str]]:
        """Rows of (option count, % of scheduling attempts, classes).

        The class attempt shares come from an original AND/OR run (the
        representation does not change attempt counts).
        """
        mdes = self.mdes(machine_name, ANDOR_REP, 0)
        run = self.run(machine_name, ANDOR_REP, 0, False)
        attempts_by_options: Dict[int, int] = {}
        classes_by_options: Dict[int, List[str]] = {}
        for class_name, op_class in mdes.op_classes.items():
            options = op_class.option_count()
            attempts = run.stats.attempts_by_class.get(class_name, 0)
            attempts_by_options[options] = (
                attempts_by_options.get(options, 0) + attempts
            )
            classes_by_options.setdefault(options, []).append(class_name)
        total = max(1, run.stats.attempts)
        return [
            (
                options,
                attempts_by_options[options] / total * 100.0,
                ", ".join(sorted(classes_by_options[options])),
            )
            for options in sorted(attempts_by_options)
        ]

    def table_breakdown(self, machine_name: str) -> str:
        """Tables 1-4: option breakdown for one machine."""
        table_number = {
            "SuperSPARC": 1, "PA7100": 2, "Pentium": 3, "K5": 4
        }[machine_name]
        rows = [
            (options, f"{share:.2f}%", classes)
            for options, share, classes in self.option_breakdown(machine_name)
        ]
        return format_table(
            ("Options", "% of Sched. Attempts", "Operation classes"),
            rows,
            title=(
                f"Table {table_number}: option breakdown and scheduling "
                f"characteristics of the {machine_name} MDES"
            ),
        )

    # ------------------------------------------------------------------
    # Figure 2: distribution of options checked per attempt
    # ------------------------------------------------------------------

    def fig2_options_distribution(
        self, machine_name: str = "SuperSPARC"
    ) -> str:
        """Figure 2: options checked per attempt, original OR-trees."""
        from repro.analysis.figures import render_options_histogram

        run = self.run(machine_name, OR_REP, 0, False)
        return render_options_histogram(run.stats.options_histogram)

    # ------------------------------------------------------------------
    # Table 5: original scheduling characteristics
    # ------------------------------------------------------------------

    def table5_rows(self) -> List[tuple]:
        """Rows: machine, ops, attempts/op, OR and AND/OR stats."""
        rows = []
        for name in MACHINE_NAMES:
            or_run = self.run(name, OR_REP, 0, False)
            andor_run = self.run(name, ANDOR_REP, 0, False)
            rows.append(
                (
                    name,
                    or_run.total_ops,
                    or_run.attempts_per_op,
                    or_run.stats.options_per_attempt,
                    or_run.stats.checks_per_attempt,
                    andor_run.stats.options_per_attempt,
                    andor_run.stats.checks_per_attempt,
                    reduction_pct(
                        or_run.stats.checks_per_attempt,
                        andor_run.stats.checks_per_attempt,
                    ),
                )
            )
        return rows

    def table5(self) -> str:
        """Table 5: original scheduling characteristics."""
        return format_table(
            (
                "MDES", "Ops", "Att/Op",
                "OR Opt/Att", "OR Chk/Att",
                "AO Opt/Att", "AO Chk/Att", "Chk Reduced",
            ),
            self.table5_rows(),
            title="Table 5: original scheduling characteristics",
        )

    # ------------------------------------------------------------------
    # Table 6: original memory requirements
    # ------------------------------------------------------------------

    def table6_rows(self) -> List[tuple]:
        """Rows: machine, trees, OR options/bytes, AND/OR options/bytes."""
        rows = []
        for name in MACHINE_NAMES:
            or_mdes = self.mdes(name, OR_REP, 0)
            andor_mdes = self.mdes(name, ANDOR_REP, 0)
            or_size = self.size(name, OR_REP, 0, False)
            andor_size = self.size(name, ANDOR_REP, 0, False)
            rows.append(
                (
                    name,
                    andor_mdes.tree_count(),
                    or_mdes.stored_option_count(),
                    or_size,
                    andor_mdes.stored_option_count(),
                    andor_size,
                    reduction_pct(or_size, andor_size),
                )
            )
        return rows

    def table6(self) -> str:
        """Table 6: original MDES memory requirements."""
        return format_table(
            (
                "MDES", "Trees", "OR Options", "OR Bytes",
                "AO Options", "AO Bytes", "Size Reduced",
            ),
            self.table6_rows(),
            title="Table 6: original MDES memory requirements",
        )

    # ------------------------------------------------------------------
    # Table 7: after redundancy elimination
    # ------------------------------------------------------------------

    def table7_rows(self) -> List[tuple]:
        """Rows per machine: post-cleanup options/bytes per rep."""
        rows = []
        for name in MACHINE_NAMES:
            before_or = self.size(name, OR_REP, 0, False)
            before_andor = self.size(name, ANDOR_REP, 0, False)
            after_or = self.size(name, OR_REP, 1, False)
            after_andor = self.size(name, ANDOR_REP, 1, False)
            or_mdes = self.mdes(name, OR_REP, 1)
            andor_mdes = self.mdes(name, ANDOR_REP, 1)
            rows.append(
                (
                    name,
                    andor_mdes.tree_count(),
                    or_mdes.stored_option_count(),
                    after_or,
                    reduction_pct(before_or, after_or),
                    andor_mdes.stored_option_count(),
                    after_andor,
                    reduction_pct(before_andor, after_andor),
                )
            )
        return rows

    def table7(self) -> str:
        """Table 7: memory after eliminating redundant/unused info."""
        return format_table(
            (
                "MDES", "Trees", "OR Options", "OR Bytes", "OR Reduced",
                "AO Options", "AO Bytes", "AO Reduced",
            ),
            self.table7_rows(),
            title=(
                "Table 7: MDES memory requirements after eliminating "
                "redundant and unused information"
            ),
        )

    def fig4_sharing(self) -> str:
        """Figure 4: OR-tree sharing between load and 2-src IALU trees."""
        mdes = self.mdes("SuperSPARC", ANDOR_REP, 1)
        load = mdes.op_class("load").constraint
        ialu = mdes.op_class("ialu_2src").constraint
        shared = {id(tree) for tree in load.or_trees} & {
            id(tree) for tree in ialu.or_trees
        }
        lines = [
            "After redundancy elimination the integer load and the",
            "2-source integer ALU AND/OR-trees share "
            f"{len(shared)} OR-tree(s) by identity:",
        ]
        for tree in load.or_trees:
            marker = "shared" if id(tree) in shared else "private"
            lines.append(
                f"  load   -> {tree.name or '<anon>':12s} "
                f"({len(tree)} options) [{marker}]"
            )
        for tree in ialu.or_trees:
            marker = "shared" if id(tree) in shared else "private"
            lines.append(
                f"  ialu2  -> {tree.name or '<anon>':12s} "
                f"({len(tree)} options) [{marker}]"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Table 8: PA7100 dominated-option removal
    # ------------------------------------------------------------------

    def table8_rows(self) -> List[tuple]:
        """PA7100 scheduling characteristics before/after option removal."""
        rows = []
        for rep in (OR_REP, ANDOR_REP):
            before = self.run("PA7100", rep, 0, False)
            after = self.run("PA7100", rep, 1, False)
            rows.append(
                (
                    rep.upper(),
                    before.stats.options_per_attempt,
                    before.stats.checks_per_attempt,
                    after.stats.options_per_attempt,
                    after.stats.checks_per_attempt,
                    reduction_pct(
                        before.stats.checks_per_attempt,
                        after.stats.checks_per_attempt,
                    ),
                )
            )
        return rows

    def table8(self) -> str:
        """Table 8: PA7100 after removing unnecessary memory options."""
        return format_table(
            (
                "Rep", "Opt/Att Before", "Chk/Att Before",
                "Opt/Att After", "Chk/Att After", "Chk Reduced",
            ),
            self.table8_rows(),
            title=(
                "Table 8: PA7100 scheduling characteristics after removing "
                "unnecessary options for memory operations"
            ),
        )

    # ------------------------------------------------------------------
    # Tables 9 and 10: bit-vector representation
    # ------------------------------------------------------------------

    def table9_rows(self) -> List[tuple]:
        """Sizes before/after packing one cycle's usages per word."""
        rows = []
        for name in MACHINE_NAMES:
            row = [name]
            for rep in (OR_REP, ANDOR_REP):
                before = self.size(name, rep, 1, False)
                after = self.size(name, rep, 1, True)
                row.extend([before, after, reduction_pct(before, after)])
            rows.append(tuple(row))
        return rows

    def table9(self) -> str:
        """Table 9: MDES sizes before/after bit-vector packing."""
        return format_table(
            (
                "MDES", "OR Before", "OR After", "OR Diff",
                "AO Before", "AO After", "AO Diff",
            ),
            self.table9_rows(),
            title=(
                "Table 9: MDES size before and after a bit-vector "
                "representation is used (one cycle/word)"
            ),
        )

    def table10_rows(self) -> List[tuple]:
        """Checks per attempt before/after bit-vector packing."""
        rows = []
        for name in MACHINE_NAMES:
            row = [name]
            for rep in (OR_REP, ANDOR_REP):
                before = self.run(name, rep, 1, False)
                after = self.run(name, rep, 1, True)
                row.extend(
                    [
                        before.stats.checks_per_attempt,
                        after.stats.checks_per_attempt,
                        reduction_pct(
                            before.stats.checks_per_attempt,
                            after.stats.checks_per_attempt,
                        ),
                    ]
                )
            rows.append(tuple(row))
        return rows

    def table10(self) -> str:
        """Table 10: checks before/after bit-vector packing."""
        return format_table(
            (
                "MDES", "OR Before", "OR After", "OR Diff",
                "AO Before", "AO After", "AO Diff",
            ),
            self.table10_rows(),
            title=(
                "Table 10: scheduling characteristics before and after a "
                "bit-vector representation is used (one cycle/word)"
            ),
        )

    # ------------------------------------------------------------------
    # Figure 5, Tables 11 and 12: usage-time transformation
    # ------------------------------------------------------------------

    def fig5_shifted_load(self) -> str:
        """Figure 5: the integer load OR-tree after usage-time shifting."""
        from repro.analysis.figures import render_or_tree

        mdes = self.mdes("SuperSPARC", OR_REP, 3)
        constraint = as_or_tree(mdes.op_class("load").constraint)
        return render_or_tree(
            constraint, label="SuperSPARC integer load (times shifted)"
        )

    def table11_rows(self) -> List[tuple]:
        """Sizes before/after usage-time shifting (bit-vector words)."""
        rows = []
        for name in MACHINE_NAMES:
            row = [name]
            for rep in (OR_REP, ANDOR_REP):
                before = self.size(name, rep, 1, True)
                after = self.size(name, rep, 3, True)
                row.extend([before, after, reduction_pct(before, after)])
            rows.append(tuple(row))
        return rows

    def table11(self) -> str:
        """Table 11: memory before/after transforming usage times."""
        return format_table(
            (
                "MDES", "OR Before", "OR After", "OR Diff",
                "AO Before", "AO After", "AO Diff",
            ),
            self.table11_rows(),
            title=(
                "Table 11: MDES memory requirements before and after "
                "transforming resource usage times (one cycle/word)"
            ),
        )

    def table12_rows(self) -> List[tuple]:
        """Checks before/after time shifting + zero-first sorting."""
        rows = []
        for name in MACHINE_NAMES:
            row = [name]
            for rep in (OR_REP, ANDOR_REP):
                before = self.run(name, rep, 1, True)
                after = self.run(name, rep, 3, True)
                row.extend(
                    [
                        before.stats.checks_per_attempt,
                        after.stats.checks_per_attempt,
                        reduction_pct(
                            before.stats.checks_per_attempt,
                            after.stats.checks_per_attempt,
                        ),
                        after.stats.checks_per_option,
                    ]
                )
            rows.append(tuple(row))
        return rows

    def table12(self) -> str:
        """Table 12: checks before/after the usage-time transformation."""
        return format_table(
            (
                "MDES", "OR Before", "OR After", "OR Diff", "OR Chk/Opt",
                "AO Before", "AO After", "AO Diff", "AO Chk/Opt",
            ),
            self.table12_rows(),
            title=(
                "Table 12: scheduling characteristics before and after "
                "transforming usage times and sorting usages to check "
                "time zero first"
            ),
        )

    # ------------------------------------------------------------------
    # Figure 6 and Table 13: AND/OR conflict-detection ordering
    # ------------------------------------------------------------------

    def fig6_tree_order(self) -> str:
        """Figure 6: AND/OR sub-tree order before and after sorting."""
        from repro.analysis.figures import render_and_or_tree

        before = self.mdes("SuperSPARC", ANDOR_REP, 3).op_class(
            "load"
        ).constraint
        after = self.mdes("SuperSPARC", ANDOR_REP, 4).op_class(
            "load"
        ).constraint
        return "\n\n".join(
            [
                "(a) original order specified:",
                render_and_or_tree(before, label="integer load"),
                "(b) after optimizing the order:",
                render_and_or_tree(after, label="integer load"),
            ]
        )

    def table13_rows(self) -> List[tuple]:
        """AND/OR options and checks before/after section 8 transforms."""
        rows = []
        for name in MACHINE_NAMES:
            before = self.run(name, ANDOR_REP, 3, True)
            after = self.run(name, ANDOR_REP, 4, True)
            rows.append(
                (
                    name,
                    before.stats.options_per_attempt,
                    after.stats.options_per_attempt,
                    reduction_pct(
                        before.stats.options_per_attempt,
                        after.stats.options_per_attempt,
                    ),
                    before.stats.checks_per_attempt,
                    after.stats.checks_per_attempt,
                    reduction_pct(
                        before.stats.checks_per_attempt,
                        after.stats.checks_per_attempt,
                    ),
                )
            )
        return rows

    def table13(self) -> str:
        """Table 13: optimizing AND/OR-trees for conflict detection."""
        return format_table(
            (
                "MDES", "Opt/Att Before", "Opt/Att After", "Opt Diff",
                "Chk/Att Before", "Chk/Att After", "Chk Diff",
            ),
            self.table13_rows(),
            title=(
                "Table 13: scheduling characteristics before and after "
                "optimizing AND/OR-trees for resource conflict detection"
            ),
        )

    # ------------------------------------------------------------------
    # Tables 14 and 15: aggregate effects
    # ------------------------------------------------------------------

    def table14_rows(self) -> List[tuple]:
        """Aggregate size effect of all transformations."""
        rows = []
        for name in MACHINE_NAMES:
            unopt = self.size(name, OR_REP, 0, False)
            or_final = self.size(name, OR_REP, _FINAL_STAGE, True)
            andor_final = self.size(name, ANDOR_REP, _FINAL_STAGE, True)
            rows.append(
                (
                    name,
                    unopt,
                    or_final,
                    reduction_pct(unopt, or_final),
                    andor_final,
                    reduction_pct(unopt, andor_final),
                )
            )
        return rows

    def table14(self) -> str:
        """Table 14: aggregate effect on representation size."""
        return format_table(
            (
                "MDES", "Unopt OR", "Opt OR", "Reduction",
                "Opt AO", "Reduction",
            ),
            self.table14_rows(),
            title=(
                "Table 14: aggregate effect of all transformations on "
                "MDES resource-constraint representation size (bytes)"
            ),
        )

    def table15_rows(self) -> List[tuple]:
        """Aggregate checks-per-attempt effect of all transformations."""
        rows = []
        for name in MACHINE_NAMES:
            unopt = self.run(name, OR_REP, 0, False)
            or_final = self.run(name, OR_REP, _FINAL_STAGE, True)
            andor_final = self.run(name, ANDOR_REP, _FINAL_STAGE, True)
            rows.append(
                (
                    name,
                    unopt.stats.checks_per_attempt,
                    or_final.stats.checks_per_attempt,
                    reduction_pct(
                        unopt.stats.checks_per_attempt,
                        or_final.stats.checks_per_attempt,
                    ),
                    andor_final.stats.checks_per_attempt,
                    reduction_pct(
                        unopt.stats.checks_per_attempt,
                        andor_final.stats.checks_per_attempt,
                    ),
                )
            )
        return rows

    def table15(self) -> str:
        """Table 15: aggregate effect on checks per attempt."""
        return format_table(
            (
                "MDES", "Unopt OR", "Opt OR", "Reduction",
                "Opt AO", "Reduction",
            ),
            self.table15_rows(),
            title=(
                "Table 15: aggregate effect of all transformations on "
                "average checks per scheduling attempt"
            ),
        )

    # ------------------------------------------------------------------
    # Invariant check
    # ------------------------------------------------------------------

    def verify_schedule_invariance(self, machine_name: str) -> bool:
        """All stages and representations produce the same schedule.

        Requires the suite to be constructed with ``keep_schedules=True``.
        """
        signatures = set()
        for rep in (OR_REP, ANDOR_REP):
            for stage, bitvector in (
                (0, False), (1, False), (1, True), (3, True), (4, True)
            ):
                run = self.run(machine_name, rep, stage, bitvector)
                signatures.add(run.signature())
        return len(signatures) == 1

    def all_tables(self) -> str:
        """Every table, concatenated (the full evaluation section)."""
        parts = [self.table_breakdown(name) for name in
                 ("SuperSPARC", "PA7100", "Pentium", "K5")]
        parts.extend(
            [
                self.table5(), self.table6(), self.table7(), self.table8(),
                self.table9(), self.table10(), self.table11(),
                self.table12(), self.table13(), self.table14(),
                self.table15(),
            ]
        )
        return "\n\n".join(parts)
