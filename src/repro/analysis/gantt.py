"""ASCII schedule rendering (a Gantt view of one basic block).

Useful for eyeballing what the scheduler did: one row per cycle, the
operations issued that cycle, and optionally the resources their chosen
options reserved.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.scheduler.schedule import BlockSchedule


def render_schedule(
    schedule: BlockSchedule, show_classes: bool = True
) -> str:
    """Render one block schedule, one line per cycle."""
    if not schedule.times:
        return "(empty schedule)"
    by_cycle: Dict[int, List[int]] = {}
    for index, cycle in schedule.times.items():
        by_cycle.setdefault(cycle, []).append(index)
    ops_by_index = {op.index: op for op in schedule.block.operations}
    first = min(by_cycle)
    last = max(by_cycle)
    lines = [
        f"block {schedule.block.label}: {len(schedule.times)} ops in "
        f"{schedule.length} cycles"
    ]
    for cycle in range(first, last + 1):
        entries = []
        for index in sorted(by_cycle.get(cycle, [])):
            op = ops_by_index[index]
            text = op.opcode
            if op.dests:
                text += f" {','.join(op.dests)}"
            if op.srcs:
                text += f"={','.join(op.srcs)}"
            if show_classes:
                text += f" [{schedule.classes[index]}]"
            entries.append(text)
        body = " | ".join(entries) if entries else "-"
        lines.append(f"  {cycle:4d}: {body}")
    return "\n".join(lines)


def render_utilization(
    schedule: BlockSchedule, compiled, machine
) -> str:
    """Render per-cycle resource utilization of one block schedule.

    Re-simulates the reservations (the same choices the scheduler made,
    since checking is deterministic) and prints which resources are busy
    each cycle.
    """
    from repro.lowlevel.bitvector import RUMap
    from repro.lowlevel.checker import ConstraintChecker

    ru_map = RUMap()
    checker = ConstraintChecker()
    for index in sorted(
        schedule.times, key=lambda i: (schedule.times[i], i)
    ):
        constraint = compiled.constraint_for_class(
            schedule.classes[index]
        )
        handle = checker.try_reserve(
            ru_map, constraint, schedule.times[index]
        )
        if handle is None:
            raise ValueError(
                f"schedule does not re-simulate at op {index}"
            )
    resources = list(machine.build().resources)
    lines = ["cycle  busy resources"]
    for cycle, word in ru_map.busy_cycles():
        names = [
            resource.name
            for resource in resources
            if word & resource.mask
        ]
        lines.append(f"{cycle:5d}  {', '.join(names)}")
    return "\n".join(lines)
