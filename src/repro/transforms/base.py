"""Shared machinery for MDES tree rewrites.

Constraint trees may be shared between operation classes (and OR-trees
between AND/OR-trees).  A naive per-class rewrite would silently duplicate
shared subtrees and inflate the memory numbers, so every transformation
rebuilds through :class:`TreeRewriter`, which caches by source-object
identity: a subtree shared in the input is shared in the output.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.mdes import Mdes
from repro.core.tables import AndOrTree, Constraint, OrTree, ReservationTable

OptionHook = Callable[[ReservationTable], ReservationTable]
OrTreeHook = Callable[[OrTree], OrTree]
AndOrHook = Callable[[AndOrTree], AndOrTree]


def _identity_option(option: ReservationTable) -> ReservationTable:
    return option


def _identity_or(tree: OrTree) -> OrTree:
    return tree


def _identity_andor(tree: AndOrTree) -> AndOrTree:
    return tree


class TreeRewriter:
    """Rebuild constraint trees bottom-up, preserving identity sharing.

    The three hooks run at their level *after* children have been
    rewritten: ``option_hook`` receives each reservation table,
    ``or_tree_hook`` receives each OR-tree already holding rewritten
    options, and ``and_or_hook`` receives each AND/OR-tree already holding
    rewritten OR-trees.
    """

    def __init__(
        self,
        option_hook: Optional[OptionHook] = None,
        or_tree_hook: Optional[OrTreeHook] = None,
        and_or_hook: Optional[AndOrHook] = None,
    ) -> None:
        self._option_hook = option_hook or _identity_option
        self._or_tree_hook = or_tree_hook or _identity_or
        self._and_or_hook = and_or_hook or _identity_andor
        self._option_cache: Dict[int, ReservationTable] = {}
        self._or_cache: Dict[int, OrTree] = {}
        self._constraint_cache: Dict[int, Constraint] = {}

    def rewrite_option(self, option: ReservationTable) -> ReservationTable:
        """Rewrite one reservation table (cached by identity)."""
        key = id(option)
        if key not in self._option_cache:
            self._option_cache[key] = self._option_hook(option)
        return self._option_cache[key]

    def rewrite_or_tree(self, tree: OrTree) -> OrTree:
        """Rewrite one OR-tree (cached by identity)."""
        key = id(tree)
        if key not in self._or_cache:
            rebuilt = OrTree(
                tuple(self.rewrite_option(option) for option in tree.options),
                name=tree.name,
            )
            self._or_cache[key] = self._or_tree_hook(rebuilt)
        return self._or_cache[key]

    def rewrite_constraint(self, constraint: Constraint) -> Constraint:
        """Rewrite one constraint tree (cached by identity)."""
        key = id(constraint)
        if key not in self._constraint_cache:
            if isinstance(constraint, AndOrTree):
                rebuilt = AndOrTree(
                    tuple(
                        self.rewrite_or_tree(tree)
                        for tree in constraint.or_trees
                    ),
                    name=constraint.name,
                )
                self._constraint_cache[key] = self._and_or_hook(rebuilt)
            else:
                self._constraint_cache[key] = self.rewrite_or_tree(constraint)
        return self._constraint_cache[key]

    def rewrite_mdes(self, mdes: Mdes, drop_unused: bool = False) -> Mdes:
        """Rewrite every constraint of a description."""
        new_classes = {
            name: op_class.with_constraint(
                self.rewrite_constraint(op_class.constraint)
            )
            for name, op_class in mdes.op_classes.items()
        }
        if drop_unused:
            unused: Dict[str, Constraint] = {}
        else:
            unused = {
                name: self.rewrite_constraint(tree)
                for name, tree in mdes.unused_trees.items()
            }
        return Mdes(
            name=mdes.name,
            resources=mdes.resources,
            op_classes=new_classes,
            opcode_map=dict(mdes.opcode_map),
            unused_trees=unused,
            bypasses=dict(mdes.bypasses),
        )
