"""Tests for the Mdes container."""

import pytest

from repro.core.expand import as_or_tree
from repro.core.mdes import Mdes, OperationClass
from repro.core.resource import ResourceTable
from repro.core.tables import AndOrTree, OrTree, ReservationTable
from repro.core.usage import ResourceUsage
from repro.errors import MdesError


class TestLookups:
    def test_class_for_opcode(self, toy_mdes):
        assert toy_mdes.class_for_opcode("LD").name == "load"

    def test_unknown_opcode(self, toy_mdes):
        with pytest.raises(MdesError, match="no operation class"):
            toy_mdes.class_for_opcode("NOPE")

    def test_unknown_class(self, toy_mdes):
        with pytest.raises(MdesError, match="unknown operation class"):
            toy_mdes.op_class("nope")

    def test_latency_for_opcode(self, toy_mdes):
        assert toy_mdes.latency_for_opcode("LD") == 1


class TestAccounting:
    def test_option_count_flat_vs_andor(self, toy_mdes):
        op_class = toy_mdes.op_class("load")
        assert op_class.option_count() == 4
        flat = op_class.with_constraint(as_or_tree(op_class.constraint))
        assert flat.option_count() == 4

    def test_tree_count_dedupes_shared(self, resources, load_and_or_tree):
        mdes = Mdes(
            "Toy2",
            resources,
            op_classes={
                "a": OperationClass("a", load_and_or_tree),
                "b": OperationClass("b", load_and_or_tree),
            },
            opcode_map={"A": "a", "B": "b"},
        )
        assert mdes.tree_count() == 1

    def test_stored_option_count_counts_shared_or_trees_once(
        self, resources, load_and_or_tree
    ):
        d0 = resources.lookup("D0")
        other = AndOrTree(
            (load_and_or_tree.or_trees[0],),  # shares the decoder tree
            name="other",
        )
        mdes = Mdes(
            "Toy3",
            resources,
            op_classes={
                "a": OperationClass("a", load_and_or_tree),
                "b": OperationClass("b", other),
            },
            opcode_map={"A": "a", "B": "b"},
        )
        # load: 2 + 2 + 1 options; 'other' shares the 2-option decoder tree.
        assert mdes.stored_option_count() == 5
        sharers = mdes.or_tree_sharers()
        shared_id = id(load_and_or_tree.or_trees[0])
        assert sharers[shared_id] == 2
        assert d0 in load_and_or_tree.or_trees[0].resources()

    def test_validate_catches_dangling_opcode(self, resources,
                                              load_and_or_tree):
        mdes = Mdes(
            "Bad",
            resources,
            op_classes={"a": OperationClass("a", load_and_or_tree)},
            opcode_map={"X": "missing"},
        )
        with pytest.raises(MdesError, match="missing"):
            mdes.validate()

    def test_validate_catches_negative_latency(self, resources,
                                               load_and_or_tree):
        mdes = Mdes(
            "Bad",
            resources,
            op_classes={
                "a": OperationClass("a", load_and_or_tree, latency=-1)
            },
            opcode_map={"A": "a"},
        )
        with pytest.raises(MdesError, match="negative"):
            mdes.validate()


class TestDerivation:
    def test_map_constraints_preserves_sharing(self, resources,
                                               load_and_or_tree):
        mdes = Mdes(
            "Toy4",
            resources,
            op_classes={
                "a": OperationClass("a", load_and_or_tree),
                "b": OperationClass("b", load_and_or_tree),
            },
            opcode_map={"A": "a", "B": "b"},
        )
        rewritten = mdes.map_constraints(lambda c: AndOrTree(c.or_trees))
        assert (
            rewritten.op_class("a").constraint
            is rewritten.op_class("b").constraint
        )

    def test_expanded_flattens_everything(self, toy_mdes):
        flat = toy_mdes.expanded()
        constraint = flat.op_class("load").constraint
        assert isinstance(constraint, OrTree)
        assert len(constraint) == 4

    def test_expanded_rewrites_unused_trees(self, toy_mdes,
                                            load_and_or_tree):
        toy = Mdes(
            toy_mdes.name,
            toy_mdes.resources,
            dict(toy_mdes.op_classes),
            dict(toy_mdes.opcode_map),
            unused_trees={"dead": load_and_or_tree},
        )
        flat = toy.expanded()
        assert isinstance(flat.unused_trees["dead"], OrTree)
