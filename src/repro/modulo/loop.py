"""Loop bodies with loop-carried dependences."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.ir.operation import Operation


@dataclass(frozen=True)
class LoopEdge:
    """A dependence within or across loop iterations.

    ``distance`` counts iterations: 0 is an ordinary intra-iteration
    dependence; 1 means the consumer of iteration ``i+1`` depends on the
    producer of iteration ``i`` (a recurrence).
    """

    pred: int
    succ: int
    latency: int
    distance: int = 0


@dataclass
class Loop:
    """One innermost loop body to be software pipelined."""

    operations: List[Operation]
    edges: List[LoopEdge] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.operations)


def make_recurrence_loop(
    machine, chain_length: int = 3, parallel_work: int = 4
) -> Loop:
    """A synthetic loop: an IALU recurrence plus independent load/ALU work.

    The recurrence bounds RecMII; the parallel operations stress ResMII.
    Used by the modulo-scheduling example and benchmarks.
    """
    alu, load = _pick_opcodes(machine)
    ops: List[Operation] = []
    edges: List[LoopEdge] = []

    # The recurrence chain: op0 -> op1 -> ... -> op0 (distance 1).
    for position in range(chain_length):
        op = Operation(position, alu, (f"c{position}",),
                       (f"c{(position - 1) % chain_length}",))
        ops.append(op)
        if position > 0:
            edges.append(
                LoopEdge(position - 1, position, machine.latency(op), 0)
            )
    closing = machine.latency(ops[0])
    edges.append(LoopEdge(chain_length - 1, 0, closing, 1))

    # Independent work: loads feeding single ALU consumers.
    index = chain_length
    for unit in range(parallel_work):
        load_op = Operation(index, load, (f"l{unit}",), (f"p{unit}",),
                            is_load=True)
        ops.append(load_op)
        consumer = Operation(index + 1, alu, (f"x{unit}",), (f"l{unit}",))
        ops.append(consumer)
        edges.append(
            LoopEdge(index, index + 1, machine.latency(load_op), 0)
        )
        index += 2
    return Loop(ops, edges)


def _pick_opcodes(machine) -> Tuple[str, str]:
    """An ALU opcode and a load opcode present on this machine."""
    alu = load = None
    for spec in machine.opcode_profile:
        if spec.kind == "int" and alu is None and spec.has_dest:
            alu = spec.opcode
        if spec.kind == "load" and load is None:
            load = spec.opcode
    if alu is None or load is None:
        raise ValueError(f"{machine.name} lacks ALU or load opcodes")
    return alu, load
