"""Ablation: does the benefit grow with scheduling-attempt pressure?

Section 4's forward-looking claim: the AND/OR representation and the
transformations matter *more* as scheduling attempts increase.  These
sweeps vary workload parallelism and region size on the SuperSPARC and
check that (a) attempt pressure moves as expected and (b) the check
reduction stays at or above its baseline level as pressure grows.
"""

from conftest import write_result

from repro.analysis.reporting import format_table
from repro.analysis.sensitivity import (
    block_size_sweep,
    ilp_sweep,
    scale_sweep,
)


def _rows(points):
    return [
        (
            point.label,
            point.attempts_per_op,
            point.unopt_checks,
            point.opt_checks,
            f"{point.reduction_pct:.1f}%",
        )
        for point in points
    ]


def test_ablation_sensitivity_regenerate(results_dir, benchmark):
    def build():
        return (
            ilp_sweep("SuperSPARC"),
            block_size_sweep("SuperSPARC"),
            scale_sweep("SuperSPARC"),
        )

    ilp_points, size_points, scale_points = benchmark(build)
    headers = (
        "Config", "Att/Op", "Unopt OR Chk/Att", "Opt AO Chk/Att",
        "Reduction",
    )
    text = "\n\n".join(
        [
            format_table(headers, _rows(ilp_points),
                         title="Sensitivity: available parallelism "
                               "(SuperSPARC)"),
            format_table(headers, _rows(size_points),
                         title="Sensitivity: scheduling region size"),
            format_table(headers, _rows(scale_points),
                         title="Sensitivity: workload scale (statistics "
                               "are intensive)"),
        ]
    )
    write_result(results_dir, "ablation_sensitivity.txt", text)

    # More ILP (lower flow probability) -> more attempt pressure.
    assert ilp_points[0].attempts_per_op > ilp_points[-1].attempts_per_op
    # The optimized representation keeps a large advantage everywhere.
    for point in ilp_points + size_points:
        assert point.reduction_pct > 70.0
    # Intensive statistics: per-attempt checks stable across scale.
    checks = [point.unopt_checks for point in scale_points]
    assert max(checks) - min(checks) < 0.15 * max(checks)
