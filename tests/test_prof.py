"""Tests for ``repro.obs.prof``: self-time, flamegraphs, memory spans.

The profiling layer's contracts:

* self time telescopes -- per-root self-time totals reconstruct the
  root's inclusive time exactly (the acceptance bar is within 1% on a
  real traced run);
* the collapsed-stack flamegraph export parses back (``a;b;c N``
  format), merges identical stacks, and is invariant under the batch
  service's worker-count-invariant span merge (1 worker and N workers
  collapse to the identical stack set);
* trace JSONL round-trips spans with nested attrs bit-for-bit;
* ``memory=True`` spans record tracemalloc peak/net bytes, child peaks
  propagate into parents, and the figures surface in the obs summary
  and Prometheus exposition.
"""

import json
import os

import pytest

from repro import obs
from repro.obs import prof
from repro.obs.trace import Span
from repro.service import BatchConfig, schedule_batch
from tests.conftest import shared_workload

N_WORKERS = max(2, int(os.environ.get("REPRO_BATCH_WORKERS", "2")))


@pytest.fixture(autouse=True)
def clean_obs():
    was_enabled = obs.enabled()
    was_memory = obs.memory_enabled()
    obs.disable()
    obs.disable_memory()
    obs.reset()
    yield
    obs.enable() if was_enabled else obs.disable()
    obs.enable_memory() if was_memory else obs.disable_memory()
    obs.reset()


def _span(name, seconds, children=(), **attrs):
    span = Span(name, attrs)
    span.seconds = seconds
    span.children = list(children)
    return span


class TestSelfTime:
    def test_leaf_self_time_is_inclusive_time(self):
        assert prof.self_seconds(_span("leaf", 0.5)) == 0.5

    def test_parent_self_time_excludes_children(self):
        tree = _span("p", 1.0, [_span("a", 0.25), _span("b", 0.5)])
        assert prof.self_seconds(tree) == pytest.approx(0.25)

    def test_self_time_clamps_at_zero_on_clock_skew(self):
        tree = _span("p", 0.1, [_span("a", 0.07), _span("b", 0.06)])
        assert prof.self_seconds(tree) == 0.0

    def test_self_time_telescopes_to_root_inclusive(self):
        tree = _span("r", 2.0, [
            _span("a", 0.75, [_span("a1", 0.25)]),
            _span("b", 0.5),
        ])
        total_self = sum(
            prof.self_seconds(span) for span in tree.walk()
        )
        assert total_self == pytest.approx(tree.seconds)

    def test_hot_spans_aggregate_by_name_and_sort_by_self(self):
        roots = [
            _span("r", 1.0, [_span("x", 0.8)]),
            _span("r", 1.0, [_span("x", 0.7)]),
        ]
        entries = prof.hot_spans(roots)
        assert [e.name for e in entries] == ["x", "r"]
        x, r = entries
        assert x.calls == 2
        assert x.inclusive_seconds == pytest.approx(1.5)
        assert x.self_seconds == pytest.approx(1.5)
        assert r.self_seconds == pytest.approx(0.5)
        assert r.inclusive_seconds == pytest.approx(2.0)

    def test_acceptance_self_time_sums_within_1pct_on_a_real_run(self):
        """Per-root self-time totals match the root's inclusive time.

        This is exact by construction (telescoping sum with clamping
        only ever *losing* overlap noise); the issue's acceptance bar
        is 1%.
        """
        obs.enable()
        obs.reset()
        machine, blocks = shared_workload("SuperSPARC", 300, 7)
        from repro import api

        api.schedule(api.ScheduleRequest(
            machine=machine, blocks=tuple(blocks),
        ))
        assert obs.TRACER.roots
        for root in obs.TRACER.roots:
            total_self = sum(
                prof.self_seconds(span) for span in root.walk()
            )
            assert total_self <= root.seconds * 1.0000001
            assert total_self == pytest.approx(
                root.seconds, rel=0.01
            )


class TestFlamegraph:
    def test_collapsed_stack_format_parses_back(self):
        tree = _span("root", 0.01, [
            _span("child", 0.004, [_span("leaf", 0.001)]),
        ])
        text = prof.flamegraph([tree])
        parsed = prof.parse_flamegraph(text)
        assert parsed == {
            "root": 6000, "root;child": 3000, "root;child;leaf": 1000,
        }

    def test_every_line_is_stack_space_integer(self):
        tree = _span("a", 0.5, [_span("b", 0.25)])
        for line in prof.flamegraph_lines([tree]):
            stack, _, count = line.rpartition(" ")
            assert stack
            assert int(count) > 0
            for frame in stack.split(";"):
                assert frame
                assert " " not in frame

    def test_reserved_characters_are_escaped_in_frames(self):
        tree = _span("a;b c", 0.001)
        (line,) = prof.flamegraph_lines([tree])
        assert line == "a:b_c 1000"

    def test_identical_stacks_merge(self):
        roots = [
            _span("r", 0.002, [_span("x", 0.001)]),
            _span("r", 0.004, [_span("x", 0.003)]),
        ]
        parsed = prof.parse_flamegraph(prof.flamegraph(roots))
        assert parsed == {"r": 2000, "r;x": 4000}

    def test_zero_weight_passthrough_parents_are_dropped(self):
        tree = _span("wrapper", 0.001, [_span("inner", 0.001)])
        parsed = prof.parse_flamegraph(prof.flamegraph([tree]))
        assert parsed == {"wrapper;inner": 1000}

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError):
            prof.parse_flamegraph(" 42")


class TestTraceJsonlRoundTrip:
    def test_nested_attrs_round_trip(self):
        obs.enable()
        obs.reset()
        with obs.span("outer", machine="K5", sizes={"a": [1, 2]}) as sp:
            with obs.span("inner", nested={"deep": {"k": "v"}}):
                pass
        sp.set(result={"counts": [3, 4], "flags": {"ok": True}})
        text = obs.trace_to_jsonl(obs.TRACER)
        roots = obs.trace_from_jsonl(text)
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "outer"
        assert root.attrs["machine"] == "K5"
        assert root.attrs["sizes"] == {"a": [1, 2]}
        assert root.attrs["result"] == {
            "counts": [3, 4], "flags": {"ok": True},
        }
        (inner,) = root.children
        assert inner.attrs["nested"] == {"deep": {"k": "v"}}
        # Re-serializing the parsed roots is a fixed point.
        assert obs.trace_to_jsonl(roots) == text

    def test_round_trip_preserves_timing_fields(self):
        obs.enable()
        obs.reset()
        with obs.span("t"):
            pass
        (root,) = obs.TRACER.roots
        (parsed,) = obs.trace_from_jsonl(obs.trace_to_jsonl(obs.TRACER))
        assert parsed.seconds == root.seconds
        assert parsed.start_ts == root.start_ts


class TestMergedTraceFlamegraph:
    """1 worker vs N workers must collapse to the identical stack set."""

    @pytest.mark.parametrize("memory", [False, True])
    def test_worker_count_invariant_stack_set(self, tmp_path, memory):
        machine_name = "PA7100"
        _, blocks = shared_workload(machine_name, 120, 11)
        knobs = dict(
            backend="bitvector", stage=4, chunk_size=4,
            cache_dir=str(tmp_path),
        )
        # Warm the disk tier so compile work collapses to disk hits in
        # every process (same setup as the span-merge determinism test).
        schedule_batch(
            machine_name, blocks, BatchConfig(workers=1, **knobs)
        )

        obs.enable()
        if memory:
            obs.enable_memory()
        stack_sets = {}
        for workers in (1, N_WORKERS):
            obs.reset()
            schedule_batch(
                machine_name, blocks, BatchConfig(workers=workers, **knobs)
            )
            parsed = prof.parse_flamegraph(
                prof.flamegraph(obs.TRACER)
            )
            stack_sets[workers] = set(parsed)
        assert stack_sets[1] == stack_sets[N_WORKERS]
        assert any(
            stack.endswith("batch:chunk") for stack in stack_sets[1]
        )
        assert all(
            stack.startswith("service:batch") for stack in stack_sets[1]
        )


class TestMemorySpans:
    def test_memory_span_records_peak_and_net(self):
        obs.enable()
        obs.enable_memory()
        obs.reset()
        with obs.span("alloc", memory=True) as sp:
            blob = [bytearray(64 * 1024) for _ in range(16)]
            del blob
        assert sp.attrs["mem_peak_bytes"] >= 16 * 64 * 1024
        # The transient allocation was freed inside the span.
        assert sp.attrs["mem_net_bytes"] < sp.attrs["mem_peak_bytes"]

    def test_child_peak_propagates_to_parent(self):
        obs.enable()
        obs.enable_memory()
        obs.reset()
        with obs.span("parent", memory=True) as parent:
            with obs.span("child", memory=True) as child:
                blob = bytearray(1 << 20)
                del blob
        assert child.attrs["mem_peak_bytes"] >= 1 << 20
        assert (
            parent.attrs["mem_peak_bytes"]
            >= child.attrs["mem_peak_bytes"]
        )

    def test_memory_requires_both_site_and_process_opt_in(self):
        obs.enable()
        obs.reset()  # memory NOT enabled
        with obs.span("quiet", memory=True) as sp:
            blob = bytearray(1 << 16)
            del blob
        assert "mem_peak_bytes" not in sp.attrs

        obs.enable_memory()
        with obs.span("unmarked") as sp:  # site did not ask
            pass
        assert "mem_peak_bytes" not in sp.attrs

    def test_memory_phases_aggregation_and_summary(self):
        obs.enable()
        obs.enable_memory()
        obs.reset()
        for _ in range(2):
            with obs.span("phase", memory=True):
                blob = bytearray(1 << 18)
                del blob
        phases = prof.memory_phases(obs.TRACER)
        assert phases["phase"]["spans"] == 2
        assert phases["phase"]["peak_bytes"] >= 1 << 18
        digest = obs.summary()
        assert digest["memory"]["phase"] == phases["phase"]

    def test_memory_view_exports_to_prometheus(self):
        obs.enable()
        obs.enable_memory()
        obs.reset()
        with obs.span("expo", memory=True):
            blob = bytearray(1 << 18)
            del blob
        text = obs.to_prometheus(obs.REGISTRY)
        parsed = obs.parse_prometheus(text)
        key = ("repro_span_mem_peak_bytes", (("span", "expo"),))
        assert parsed["samples"][key] >= 1 << 18

    def test_summary_has_no_memory_section_when_off(self):
        obs.enable()
        obs.reset()
        with obs.span("plain"):
            pass
        assert "memory" not in obs.summary()

    def test_memory_attrs_survive_jsonl_round_trip(self):
        obs.enable()
        obs.enable_memory()
        obs.reset()
        with obs.span("disk", memory=True):
            blob = bytearray(1 << 16)
            del blob
        (parsed,) = obs.trace_from_jsonl(obs.trace_to_jsonl(obs.TRACER))
        assert parsed.attrs["mem_peak_bytes"] >= 1 << 16
        assert json.dumps(parsed.to_dict())  # still JSON-serializable


class TestFormatting:
    def test_format_hot_spans_has_header_and_rows(self):
        roots = [_span("alpha", 0.01, [_span("beta", 0.004)])]
        text = prof.format_hot_spans(roots)
        lines = text.splitlines()
        assert lines[0].split() == [
            "span", "calls", "self_ms", "incl_ms", "self_%",
        ]
        assert any(line.startswith("alpha") for line in lines[1:])

    def test_format_hot_spans_empty(self):
        assert "no spans" in prof.format_hot_spans([])

    def test_format_memory_empty_mentions_flag(self):
        assert "REPRO_OBS_MEMORY" in prof.format_memory([])
