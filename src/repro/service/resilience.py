"""Fault-tolerance policies for the batch-scheduling service.

The scheduling literature's contract for production batch compilation
is that a per-block solver failure degrades to a fallback instead of
failing the compilation unit (Castaneda Lozano & Schulte's register
allocation/instruction-scheduling survey makes the same point for
combinatorial solvers).  This module is that contract made typed and
explicit for :func:`repro.service.schedule_batch`:

* :class:`RetryPolicy` -- bounded per-chunk retries with exponential
  backoff and **deterministic** jitter: the delay for (chunk, attempt)
  is a pure function of the policy seed, so a recovered run is
  reproducible, not merely likely to converge.
* :class:`TimeoutPolicy` -- the per-chunk wall-clock budget enforced on
  the pool path (an in-process chunk cannot be preempted, so the serial
  path documents rather than enforces it).
* :class:`BlockFailure` -- the typed quarantine record
  ``BatchResult.errors`` collects when ``on_error="report"``: which
  block, in which chunk, after how many attempts, failing how.

The *determinism-under-retry* argument, which the differential tests in
``tests/test_resilience.py`` assert bit-for-bit: every chunk attempt
runs against a fresh engine over the same compiled description, and a
failed attempt's partial outcome (schedules, stats, spans) is discarded
wholesale.  The surviving outcome of a retried chunk is therefore
byte-identical to the outcome a clean run produces, so the reassembled
schedule list, the folded :class:`~repro.lowlevel.checker.CheckStats`,
and the grafted chunk-span tree are all invariant under any recoverable
fault profile.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import (
    CacheCorruptionError,
    ChunkTimeoutError,
    SchedulingError,
    WorkerCrashError,
)

#: Failure types worth retrying: transient by nature (a crashed worker,
#: an expired budget, a quarantined-and-rebuilt cache entry) or by
#: convention (SchedulingError covers injected transients and solver
#: give-ups that a fresh attempt may clear).  Everything else -- a
#: KeyError from an unknown opcode, a ValueError from bad config -- is
#: deterministic and goes straight to isolation.
RETRYABLE_TYPES = (
    SchedulingError,
    WorkerCrashError,
    ChunkTimeoutError,
    CacheCorruptionError,
    ConnectionError,
    OSError,
)


def is_retryable(error: BaseException) -> bool:
    """Whether a fresh attempt could plausibly clear this failure."""
    return isinstance(error, RETRYABLE_TYPES)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    Attributes:
        retries: Extra attempts per chunk after the first (0 disables
            chunk-level retry; pool crash recovery still runs).
        backoff_base: Delay before the first retry, in seconds.
        backoff_factor: Multiplier per further retry.
        backoff_max: Delay ceiling, in seconds.
        jitter: Fraction of the delay added deterministically from
            ``seed`` (0 disables; 0.5 means up to +50%).
        seed: Jitter seed; part of the run's reproducible identity.
        max_pool_restarts: Fresh pools built after ``BrokenProcessPool``
            or a chunk timeout before degrading to the serial path.
    """

    retries: int = 0
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.5
    seed: int = 0
    max_pool_restarts: int = 3

    def validate(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0: {self.retries}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1: {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {self.jitter}")
        if self.max_pool_restarts < 0:
            raise ValueError(
                f"max_pool_restarts must be >= 0: {self.max_pool_restarts}"
            )

    @property
    def attempts(self) -> int:
        """Total chunk attempts the policy allows."""
        return self.retries + 1

    def delay(self, chunk_index: int, attempt: int) -> float:
        """Seconds to wait before ``attempt`` of ``chunk_index``.

        ``attempt`` is 1-based here (the retry number).  The jitter
        component is drawn from a PRNG seeded by (seed, chunk, attempt),
        so two runs of the same policy back off identically -- recovered
        runs are reproducible end to end.
        """
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        if not self.jitter:
            return base
        fraction = random.Random(
            f"{self.seed}|{chunk_index}|{attempt}"
        ).random()
        return base * (1.0 + self.jitter * fraction)


@dataclass(frozen=True)
class TimeoutPolicy:
    """Per-chunk wall-clock budget.

    ``chunk_seconds=None`` disables enforcement.  The budget covers
    queue wait plus execution (the driver cannot observe when a pool
    task leaves the queue), so size it for the whole dispatch, not just
    the scheduling work.  Enforced only on the pool path: a hung
    in-process chunk cannot be preempted from the same thread.
    """

    chunk_seconds: Optional[float] = None

    def validate(self) -> None:
        if self.chunk_seconds is not None and self.chunk_seconds <= 0:
            raise ValueError(
                f"chunk_seconds must be > 0: {self.chunk_seconds}"
            )


@dataclass(frozen=True)
class BlockFailure:
    """One quarantined block: the typed record in ``BatchResult.errors``.

    Attributes:
        block_index: Global index into the batch's input block list.
        machine: Machine the batch ran against.
        chunk_index: Chunk the block arrived in.
        attempts: Chunk attempts consumed before isolation gave up.
        error_type: Exception class name of the final cause.
        message: Final cause, stringified (exceptions from pool workers
            arrive pickled; the record stays process-portable).
    """

    block_index: int
    machine: str
    chunk_index: int
    attempts: int
    error_type: str
    message: str

    @classmethod
    def from_exception(
        cls, block_index: int, machine: str, chunk_index: int,
        attempts: int, error: BaseException,
    ) -> "BlockFailure":
        return cls(
            block_index=block_index,
            machine=machine,
            chunk_index=chunk_index,
            attempts=attempts,
            error_type=type(error).__name__,
            message=str(error),
        )

    def to_dict(self) -> dict:
        """JSON-ready form for CLI reports."""
        return {
            "block_index": self.block_index,
            "machine": self.machine,
            "chunk_index": self.chunk_index,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
        }


__all__ = [
    "BlockFailure",
    "RETRYABLE_TYPES",
    "RetryPolicy",
    "TimeoutPolicy",
    "is_retryable",
]
