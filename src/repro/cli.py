"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``machines`` -- list the built-in machine descriptions.
* ``tables [--ops N] [--table N]`` -- regenerate the paper's tables.
* ``figures [--name figN]`` -- regenerate the paper's figures.
* ``lint (FILE | --machine NAME)`` -- MDES diagnostics.
* ``optimize FILE -o OUT`` -- run the transformation pipeline on an
  HMDES file and write the optimized description back as HMDES.
* ``expand FILE -o OUT`` -- the AND/OR -> OR preprocessor.
* ``generate --machine NAME --ops N -o FILE`` -- synthesize a workload
  trace.
* ``schedule (--machine NAME | --trace FILE) [options]`` -- schedule a
  workload and report the paper's statistics.
* ``exact --machine NAME [--ops N] [--node-budget N]
  [--time-budget S] [--max-block-ops N]`` -- schedule a small workload
  with the branch-and-bound exact scheduler and report the per-block
  optimality gap against the list-scheduler seed.
* ``schedule-batch (--machine NAME | --trace FILE) [--workers N]
  [--cache-dir DIR] [--retries N] [--chunk-timeout S]
  [--on-error raise|report] [options]`` -- shard a workload across a
  process pool with a persistent on-disk description cache, retrying
  recoverable faults and quarantining poisoned blocks.
* ``serve [--host H] [--port P] [--cache-dir DIR] [--prewarm NAME]
  [--max-inflight N] [--per-client N] [--deadline S]`` -- run the
  long-running scheduling service: POST workloads to
  ``/v1/schedule``, every request served out of one warm description
  cache, with ``/metrics`` and ``/healthz`` wired to the obs and
  resilience layers.
* ``sweep [--family NAME] [--count N] [--seed N] [--workers N]
  [--exact-sample N] [--out FILE] [--json]`` -- schedule one fixed
  workload across a seeded synthetic machine fleet
  (``synth:<family>:<seed>:<index>``), verify every variant against
  the oracle, and report transform effectiveness vs. machine
  complexity; ``--out`` streams the per-variant rows as JSONL.
* ``verify [--machine NAME] [--backend NAME] [options]`` -- schedule a
  seeded workload and replay it through the independent oracle; with
  ``--golden DIR`` check (or ``--regen`` regenerate) the golden
  conformance corpus (paper machines plus the pinned synth
  mini-fleet).
* ``fuzz [--seed N] [--cases N] [--no-shrink] [--out DIR]`` -- run the
  cross-backend differential fuzzer over generated HMDES descriptions,
  shrinking any divergence to a minimal reproducer.
* ``stats --machine NAME [--prom]`` -- run one observed workload and
  print the obs metrics registry (optionally Prometheus exposition),
  with estimated p50/p95/p99 per histogram.
* ``trace (--machine NAME | --input FILE) [--hot] [--flamegraph]
  [--memory] [-o FILE]`` -- run one observed workload (or load a saved
  JSONL trace) and print its span tree, a self-time hot-span table, or
  a collapsed-stack flamegraph.
* ``bench [--suite PAT] [--repeats N] [--smoke] [--check]
  [--update-baseline] [--json]`` -- run the curated benchmark suite,
  append normalized records to ``benchmarks/results/BENCH_history.jsonl``,
  write the repo-root ``BENCH_summary.json``, and (with ``--check``)
  exit nonzero on a statistically confirmed regression against the
  pinned ``BENCH_baseline.json``.
* ``report [--ops N] [-o FILE]`` -- regenerate EXPERIMENTS.md.

``schedule --json`` / ``schedule-batch --json`` embed the obs digest
(per-phase seconds and per-transform size/option deltas); ``REPRO_OBS=1``
turns recording on for library use.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.machines import MACHINE_NAMES, get_machine
from repro.machines.registry import EXTRA_MACHINE_NAMES

#: Every machine the CLI can target (paper four + retargeting demos).
ALL_MACHINE_NAMES = MACHINE_NAMES + EXTRA_MACHINE_NAMES


def _machine_arg(value: str) -> str:
    """Argparse type for ``--machine``: a built-in name or a synthetic
    fleet name (``synth:<family>:<seed>:<index>``), validated eagerly
    so malformed names fail at parse time like a bad choice would."""
    from repro.machines.synth import get_family, is_synth_name, parse_name

    if is_synth_name(value):
        try:
            get_family(parse_name(value)[0])
        except KeyError as exc:
            raise argparse.ArgumentTypeError(
                exc.args[0] if exc.args else str(exc)
            ) from None
        return value
    if value in ALL_MACHINE_NAMES:
        return value
    raise argparse.ArgumentTypeError(
        "invalid choice: %r (choose from %s, or synth:<family>:<seed>:<index>)"
        % (value, ", ".join(repr(name) for name in ALL_MACHINE_NAMES))
    )


def _cmd_machines(args: argparse.Namespace) -> int:
    for name in ALL_MACHINE_NAMES:
        machine = get_machine(name)
        mdes = machine.build()
        print(
            f"{name:11s} {machine.scheduling_mode:8s} "
            f"{len(mdes.op_classes):3d} classes  "
            f"{len(mdes.opcode_map):3d} opcodes  "
            f"{len(mdes.resources):3d} resources  "
            f"{mdes.stored_option_count():4d} stored options "
            f"({mdes.expanded().stored_option_count()} flat)"
        )
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from repro.analysis import ExperimentSuite

    suite = ExperimentSuite(total_ops=args.ops)
    if args.table is None:
        print(suite.all_tables())
        return 0
    methods = {
        1: lambda: suite.table_breakdown("SuperSPARC"),
        2: lambda: suite.table_breakdown("PA7100"),
        3: lambda: suite.table_breakdown("Pentium"),
        4: lambda: suite.table_breakdown("K5"),
        5: suite.table5, 6: suite.table6, 7: suite.table7,
        8: suite.table8, 9: suite.table9, 10: suite.table10,
        11: suite.table11, 12: suite.table12, 13: suite.table13,
        14: suite.table14, 15: suite.table15,
    }
    if args.table not in methods:
        print(f"no table {args.table}; choose 1-15", file=sys.stderr)
        return 2
    print(methods[args.table]())
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis import ExperimentSuite

    suite = ExperimentSuite(total_ops=args.ops)
    figures = {
        "fig1": suite.fig1_load_reservation_tables,
        "fig2": suite.fig2_options_distribution,
        "fig3": suite.fig3_representations,
        "fig4": suite.fig4_sharing,
        "fig5": suite.fig5_shifted_load,
        "fig6": suite.fig6_tree_order,
    }
    names = [args.name] if args.name else sorted(figures)
    for name in names:
        if name not in figures:
            print(f"no figure {name!r}; choose fig1-fig6",
                  file=sys.stderr)
            return 2
        print(f"=== {name} ===")
        print(figures[name]())
        print()
    return 0


def _load_description(args: argparse.Namespace):
    from repro.hmdes import load_mdes

    if getattr(args, "machine", None):
        return get_machine(args.machine).build()
    with open(args.file) as handle:
        return load_mdes(handle.read())


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.hmdes.validator import lint_mdes

    mdes = _load_description(args)
    diagnostics = lint_mdes(mdes)
    for diagnostic in diagnostics:
        print(diagnostic)
    warnings = sum(1 for d in diagnostics if d.severity == "warning")
    print(f"{warnings} warning(s), {len(diagnostics) - warnings} info")
    return 1 if warnings and args.strict else 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    from repro.hmdes import load_mdes, write_mdes
    from repro.lowlevel import compile_mdes, mdes_size_bytes
    from repro.transforms import optimize

    with open(args.file) as handle:
        mdes = load_mdes(handle.read())
    before = mdes_size_bytes(compile_mdes(mdes, bitvector=True))
    optimized = optimize(mdes, direction=args.direction)
    after = mdes_size_bytes(compile_mdes(optimized, bitvector=True))
    text = write_mdes(optimized)
    with open(args.output, "w") as handle:
        handle.write(text)
    print(
        f"{args.file}: {before} -> {after} bytes "
        f"({(before - after) / before * 100:.1f}% smaller); wrote "
        f"{args.output}"
    )
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.transforms.pipeline import staged_mdes
    from repro.hmdes import load_mdes
    from repro.lowlevel import compile_mdes, mdes_size_bytes
    from repro.lowlevel.serialize import save_lmdes

    if args.machine:
        base = get_machine(args.machine).build_andor()
    else:
        with open(args.file) as handle:
            base = load_mdes(handle.read())
    mdes = staged_mdes(base, args.stage)
    compiled = compile_mdes(mdes, bitvector=not args.no_bitvector)
    text = save_lmdes(compiled)
    with open(args.output, "w") as handle:
        handle.write(text)
    print(
        f"wrote {args.output}: {mdes_size_bytes(compiled)} bytes of "
        f"compiled constraints (stage {args.stage})"
    )
    return 0


def _cmd_expand(args: argparse.Namespace) -> int:
    from repro.hmdes import load_mdes, write_mdes

    with open(args.file) as handle:
        mdes = load_mdes(handle.read())
    flat = mdes.expanded()
    with open(args.output, "w") as handle:
        handle.write(write_mdes(flat))
    print(
        f"{args.file}: {mdes.stored_option_count()} stored options -> "
        f"{flat.stored_option_count()} flat options; wrote {args.output}"
    )
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.workloads import WorkloadConfig, generate_blocks
    from repro.workloads.trace import write_trace

    machine = get_machine(args.machine)
    blocks = generate_blocks(
        machine, WorkloadConfig(total_ops=args.ops, seed=args.seed)
    )
    text = write_trace(blocks, machine.name)
    with open(args.output, "w") as handle:
        handle.write(text)
    total = sum(len(block) for block in blocks)
    print(f"wrote {args.output}: {len(blocks)} blocks, {total} ops")
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    from repro.engine import engine_names, get_engine_spec
    from repro.lowlevel.packed import (
        PACKED_WORD_BUDGET,
        numpy_available,
        word_count_for,
    )

    for name in engine_names():
        spec = get_engine_spec(name)
        packing = "bitvector" if spec.bitvector else "scalar"
        flags = ",".join(
            flag for flag, enabled in (
                ("modulo", spec.supports_modulo),
                ("vectorized", spec.vectorized),
                ("exact", spec.scheduler == "exact"),
            ) if enabled
        ) or "-"
        print(
            f"{name:13s} {spec.rep:5s} {packing:9s} "
            f"min-stage {spec.min_stage}  [{flags}]  {spec.description}"
        )
    numpy_state = "available" if numpy_available() else "unavailable"
    print(
        f"\npacked layout: numpy {numpy_state}, word budget "
        f"{PACKED_WORD_BUDGET} ({PACKED_WORD_BUDGET * 64} resources)"
    )
    for name in ALL_MACHINE_NAMES:
        mdes = get_machine(name).build()
        words = word_count_for(len(mdes.resources))
        eligible = (
            "packed" if numpy_available() and words <= PACKED_WORD_BUDGET
            else "scalar fallback"
        )
        print(
            f"  {name:11s} {len(mdes.resources):3d} resources  "
            f"{words} word(s)  {eligible}"
        )
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    import json

    from repro import obs
    from repro.transforms.pipeline import staged_mdes
    from repro.errors import MdesError
    from repro.lowlevel import compile_mdes
    from repro.scheduler import schedule_workload
    from repro.workloads import WorkloadConfig, generate_blocks
    from repro.workloads.trace import read_trace

    if args.backend and args.lmdes:
        print("schedule --backend and --lmdes are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.json or args.trace_out:
        # Machine-readable output embeds the obs digest, so recording
        # must be on for this run regardless of REPRO_OBS.
        obs.enable()
        obs.reset()
    if args.trace:
        with open(args.trace) as handle:
            machine_name, blocks = read_trace(handle.read())
        machine = get_machine(args.machine or machine_name)
    elif args.lmdes:
        if not args.machine:
            print("schedule --lmdes needs --machine for the workload "
                  "profile", file=sys.stderr)
            return 2
        machine = get_machine(args.machine)
        blocks = generate_blocks(
            machine, WorkloadConfig(total_ops=args.ops, seed=args.seed)
        )
    else:
        if not args.machine:
            print("schedule needs --machine or --trace", file=sys.stderr)
            return 2
        machine = get_machine(args.machine)
        blocks = generate_blocks(
            machine, WorkloadConfig(total_ops=args.ops, seed=args.seed)
        )
    if args.backend:
        from repro.engine import get_engine_spec

        if get_engine_spec(args.backend).scheduler == "exact":
            return _run_exact_cmd(
                machine, blocks, args.backend, args.stage,
                None, None, args.json,
            )
    with obs.span("cli:schedule", machine=machine.name) as sp:
        if args.backend:
            from repro import api
            from repro.errors import RequestError

            try:
                response = api.schedule(api.ScheduleRequest(
                    machine=machine, blocks=tuple(blocks),
                    backend=args.backend, stage=args.stage,
                ))
            except (MdesError, RequestError) as exc:
                print(f"schedule --backend {args.backend}: {exc}",
                      file=sys.stderr)
                return 2
            result = response.result
            configuration = f"backend {args.backend}"
        else:
            if args.lmdes:
                from repro.lowlevel.serialize import load_lmdes

                with open(args.lmdes) as handle:
                    compiled = load_lmdes(handle.read())
            else:
                base = (
                    machine.build_or()
                    if args.rep == "or"
                    else machine.build_andor()
                )
                mdes = staged_mdes(base, args.stage)
                compiled = compile_mdes(
                    mdes, bitvector=not args.no_bitvector
                )
            result = schedule_workload(machine, compiled, blocks)
            configuration = args.rep
    if args.trace_out:
        with open(args.trace_out, "w") as handle:
            handle.write(obs.trace_to_jsonl(obs.TRACER))
    stats = result.stats
    if args.json:
        print(json.dumps(
            {
                "machine": machine.name,
                "configuration": configuration,
                "stage": args.stage,
                "ops": result.total_ops,
                "cycles": result.total_cycles,
                "attempts": stats.attempts,
                "attempts_per_op": result.attempts_per_op,
                "options_per_attempt": stats.options_per_attempt,
                "checks_per_attempt": stats.checks_per_attempt,
                "checks_per_option": stats.checks_per_option,
                "wall_seconds": sp.seconds,
                "obs": obs.summary(),
            },
            indent=2,
        ))
        return 0
    print(f"machine:             {machine.name} ({configuration}, "
          f"stage {args.stage})")
    print(f"operations:          {result.total_ops}")
    print(f"schedule cycles:     {result.total_cycles}")
    print(f"attempts/op:         {result.attempts_per_op:.2f}")
    print(f"options/attempt:     {stats.options_per_attempt:.2f}")
    print(f"checks/attempt:      {stats.checks_per_attempt:.2f}")
    print(f"checks/option:       {stats.checks_per_option:.2f}")
    return 0


def _run_exact_cmd(
    machine, blocks, backend, stage, budget, max_block_ops, as_json,
) -> int:
    """Shared body of ``exact`` and ``schedule --backend exact``."""
    import json

    from repro import api, obs

    if as_json:
        obs.enable()
        obs.reset()
    with obs.span("cli:exact", machine=machine.name) as sp:
        run = api.schedule_exact(
            api.ScheduleRequest(
                machine=machine, blocks=tuple(blocks),
                backend=backend, stage=stage,
            ),
            budget=budget, max_block_ops=max_block_ops,
        ).result
    per_block = [
        {
            "ops": len(result.schedule.block),
            "length": result.length,
            "heuristic_length": result.heuristic_length,
            "gap": result.gap,
            "lower_bound": result.lower_bound,
            "optimal": result.optimal,
            "reason": result.reason,
            "nodes": result.nodes,
            "repairs": result.repairs,
            "seconds": result.seconds,
        }
        for result in run.results
    ]
    if as_json:
        print(json.dumps(
            {
                "machine": machine.name,
                "backend": backend,
                "stage": stage,
                "blocks": len(run.results),
                "ops": run.total_ops,
                "cycles": run.total_cycles,
                "heuristic_cycles": run.heuristic_cycles,
                "gap_cycles": run.gap_cycles,
                "optimal_blocks": run.optimal_blocks,
                "nodes": run.nodes,
                "repairs": run.repairs,
                "pruned": run.pruned,
                "wall_seconds": sp.seconds,
                "per_block": per_block,
                "obs": obs.summary(),
            },
            indent=2,
        ))
        return 0
    print(f"machine:             {machine.name} (backend {backend}, "
          f"stage {stage})")
    print(f"blocks:              {len(run.results)} "
          f"({run.optimal_blocks} proven optimal)")
    print(f"operations:          {run.total_ops}")
    print(f"exact cycles:        {run.total_cycles}")
    print(f"heuristic cycles:    {run.heuristic_cycles}")
    print(f"gap (cycles saved):  {run.gap_cycles}")
    print(f"search nodes:        {run.nodes} "
          f"({run.repairs} repair(s), {run.pruned} pruned)")
    print(f"wall seconds:        {run.seconds:.3f}")
    print()
    print("block   ops  exact  heur  gap  lower  reason       nodes")
    for index, entry in enumerate(per_block):
        print(
            f"{index:5d} {entry['ops']:5d} {entry['length']:6d} "
            f"{entry['heuristic_length']:5d} {entry['gap']:4d} "
            f"{entry['lower_bound']:6d}  {entry['reason']:11s} "
            f"{entry['nodes']:6d}"
        )
    return 0


def _cmd_exact(args: argparse.Namespace) -> int:
    from repro.exact import ExactBudget
    from repro.workloads import WorkloadConfig, generate_blocks

    machine = get_machine(args.machine)
    blocks = generate_blocks(
        machine, WorkloadConfig(total_ops=args.ops, seed=args.seed)
    )
    default = ExactBudget()
    budget = ExactBudget(
        max_nodes=(
            args.node_budget if args.node_budget is not None
            else default.max_nodes
        ),
        max_seconds=args.time_budget,
    )
    return _run_exact_cmd(
        machine, blocks, args.backend, args.stage, budget,
        args.max_block_ops, args.json,
    )


def _batch_workload(args: argparse.Namespace):
    """Resolve (machine, blocks) for ``schedule-batch``; None on error."""
    from repro.workloads import WorkloadConfig, generate_blocks
    from repro.workloads.trace import read_trace

    if args.trace:
        with open(args.trace) as handle:
            machine_name, blocks = read_trace(handle.read())
        return get_machine(args.machine or machine_name), blocks
    if not args.machine:
        print("schedule-batch needs --machine or --trace", file=sys.stderr)
        return None
    machine = get_machine(args.machine)
    blocks = generate_blocks(
        machine, WorkloadConfig(total_ops=args.ops, seed=args.seed)
    )
    return machine, blocks


def _cmd_schedule_batch(args: argparse.Namespace) -> int:
    import json
    import time

    from repro import api, obs
    from repro.errors import MdesError, RequestError, ServiceError
    from repro.service import BatchConfig, RetryPolicy, TimeoutPolicy

    if args.backend and args.lmdes:
        print(
            "schedule-batch --backend and --lmdes are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.json or args.trace_out:
        obs.enable()
        obs.reset()
    resolved = _batch_workload(args)
    if resolved is None:
        return 2
    machine, blocks = resolved
    config = BatchConfig(
        backend=args.backend,
        lmdes_path=args.lmdes,
        stage=args.stage,
        workers=args.workers,
        chunk_size=args.chunk_size,
        cache_dir=args.cache_dir,
        retry=RetryPolicy(retries=args.retries),
        timeout=TimeoutPolicy(chunk_seconds=args.chunk_timeout),
        on_error=args.on_error,
        verify=args.verify,
    )
    # The wall clock is an obs span, not an ad-hoc perf_counter: the
    # same timing lands in the trace tree and the JSON obs digest.
    started = time.perf_counter()
    with obs.span("cli:schedule-batch", machine=machine.name) as sp:
        try:
            result = api.schedule_batch(api.BatchRequest(
                machine=machine, blocks=tuple(blocks), config=config,
            )).result
        except ServiceError as exc:
            print(f"schedule-batch: {exc}", file=sys.stderr)
            for failure in exc.failures:
                print(
                    f"  block {failure.block_index} (chunk "
                    f"{failure.chunk_index}, {failure.attempts} "
                    f"attempt(s)): {failure.error_type}: "
                    f"{failure.message}",
                    file=sys.stderr,
                )
            return 3
        except (MdesError, RequestError, ValueError, OSError) as exc:
            print(f"schedule-batch: {exc}", file=sys.stderr)
            return 2
    elapsed = sp.seconds if obs.enabled() else time.perf_counter() - started
    if args.trace_out:
        with open(args.trace_out, "w") as handle:
            handle.write(obs.trace_to_jsonl(obs.TRACER))
    stats, cache = result.stats, result.cache_stats
    if args.json:
        print(json.dumps(
            {
                "machine": result.machine_name,
                "backend": result.backend,
                "workers": result.workers,
                "chunks": result.chunk_count,
                "blocks": len(result.schedules),
                "ops": result.total_ops,
                "cycles": result.total_cycles,
                "attempts": stats.attempts,
                "attempts_per_op": result.attempts_per_op,
                "options_per_attempt": stats.options_per_attempt,
                "checks_per_attempt": stats.checks_per_attempt,
                "wall_seconds": elapsed,
                "cache": {
                    "memory_hits": cache.hits,
                    "memory_misses": cache.misses,
                    "disk_hits": cache.disk_hits,
                    "disk_misses": cache.disk_misses,
                    "disk_stores": cache.disk_stores,
                    "disk_quarantined": cache.disk_quarantined,
                },
                "resilience": {
                    "retries": result.retries,
                    "timeouts": result.timeouts,
                    "pool_restarts": result.pool_restarts,
                    "degraded": result.degraded,
                    "quarantined": result.quarantined,
                    "errors": [f.to_dict() for f in result.errors],
                },
                "verify": (
                    result.verify_report.summary()
                    if result.verify_report is not None else None
                ),
                "obs": obs.summary(),
            },
            indent=2,
        ))
        return 0
    print(f"machine:             {result.machine_name} "
          f"(backend {result.backend}, {result.workers} worker(s), "
          f"{result.chunk_count} chunks)")
    print(f"operations:          {result.total_ops}")
    print(f"schedule cycles:     {result.total_cycles}")
    print(f"attempts/op:         {result.attempts_per_op:.2f}")
    print(f"options/attempt:     {stats.options_per_attempt:.2f}")
    print(f"checks/attempt:      {stats.checks_per_attempt:.2f}")
    print(f"wall seconds:        {elapsed:.3f}")
    if args.cache_dir:
        print(f"description cache:   {cache.disk_hits} disk hit(s), "
              f"{cache.disk_misses} miss(es), {cache.disk_stores} "
              f"store(s), {cache.disk_quarantined} quarantined")
    if result.verify_report is not None:
        report = result.verify_report
        verdict = "ok" if report.ok else (
            f"FAILED ({len(report.diagnostics)} diagnostics)"
        )
        print(f"oracle verification: {verdict} "
              f"({report.blocks_checked} blocks replayed)")
    if (result.retries or result.timeouts or result.pool_restarts
            or result.degraded or result.errors):
        print(f"resilience:          {result.retries} retry(ies), "
              f"{result.timeouts} timeout(s), {result.pool_restarts} "
              f"pool restart(s), {result.quarantined} quarantined"
              f"{', degraded to serial' if result.degraded else ''}")
        for failure in result.errors:
            print(f"  quarantined block {failure.block_index}: "
                  f"{failure.error_type}: {failure.message}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.sweep import SweepConfig, run_sweep

    config = SweepConfig(
        family=args.family,
        count=args.count,
        seed=args.seed,
        ops=args.ops,
        workload_seed=args.workload_seed,
        backend=args.backend,
        stage=args.stage,
        workers=args.workers,
        verify=not args.no_verify,
        exact_sample=args.exact_sample,
        cache_dir=args.cache_dir,
    )
    try:
        config.validate()
    except (KeyError, ValueError) as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    progress = None
    if not args.json and sys.stderr.isatty():
        def progress(done: int, total: int) -> None:
            print(f"\rsweep: {done}/{total} variants",
                  end="", file=sys.stderr, flush=True)
    report = run_sweep(config, progress=progress)
    if progress is not None:
        print(file=sys.stderr)
    if args.out:
        path = report.write_jsonl(args.out)
        if not args.json:
            print(f"wrote {path}")
    if args.json:
        print(json.dumps(report.summary_dict(), indent=2))
    else:
        print(report.summary_table())
        if not report.ok:
            for variant in report.variants:
                if not variant.ok:
                    print(
                        f"quarantined {variant.name}: "
                        f"{variant.error_type}: {variant.error_message}",
                        file=sys.stderr,
                    )
    return 0 if report.ok else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    import json

    from repro.engine import engine_names
    from repro.scheduler import schedule_workload
    from repro.verify import (
        check_corpus,
        check_synth_fleet,
        verify_schedule,
        write_corpus,
        write_synth_fleet,
    )
    from repro.workloads import WorkloadConfig, generate_blocks

    if args.golden:
        if args.regen:
            written = write_corpus(args.golden)
            written.append(write_synth_fleet(args.golden))
            for path in written:
                print(f"wrote {path}")
            return 0
        mismatches = check_corpus(args.golden)
        mismatches.extend(check_synth_fleet(args.golden))
        if mismatches:
            for mismatch in mismatches:
                print(f"golden mismatch: {mismatch}", file=sys.stderr)
            print(
                f"{len(mismatches)} golden-corpus mismatch(es); "
                f"regenerate with: repro verify --golden {args.golden} "
                "--regen",
                file=sys.stderr,
            )
            return 1
        print(f"golden corpus {args.golden}: ok")
        return 0

    machines = [args.machine] if args.machine else list(MACHINE_NAMES)
    backends = (
        [args.backend] if args.backend
        else list(engine_names(scheduler="list"))
    )
    results = []
    failed = False
    for machine_name in machines:
        machine = get_machine(machine_name)
        blocks = generate_blocks(machine, WorkloadConfig(
            total_ops=args.ops, seed=args.seed,
        ))
        for backend in backends:
            from repro.engine import create_engine, get_engine_spec

            if get_engine_spec(backend).scheduler == "exact":
                from repro import api

                if args.direction != "forward":
                    print(
                        "verify --backend exact schedules forward only",
                        file=sys.stderr,
                    )
                    return 2
                run = api.schedule_exact(api.ScheduleRequest(
                    machine=machine, blocks=tuple(blocks),
                    backend=backend, stage=args.stage,
                )).result
            else:
                engine = create_engine(backend, machine, stage=args.stage)
                run = schedule_workload(
                    machine, None, blocks, keep_schedules=True,
                    direction=args.direction, engine=engine,
                )
            report = verify_schedule(
                machine, run, direction=args.direction
            )
            summary = report.summary()
            summary["backend"] = backend
            results.append(summary)
            if not report.ok:
                failed = True
                if not args.json:
                    for diagnostic in report.diagnostics:
                        print(f"  {diagnostic}", file=sys.stderr)
            if not args.json:
                verdict = "ok" if report.ok else (
                    f"FAILED ({len(report.diagnostics)} diagnostics)"
                )
                print(
                    f"{machine_name:11s} {backend:13s} "
                    f"{report.blocks_checked:4d} blocks "
                    f"{report.ops_checked:6d} ops  {verdict}"
                )
    if args.json:
        print(json.dumps(results, indent=2))
    return 1 if failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import QueuePolicy, ServerConfig, create_app
    from repro.server.http import serve

    prewarm_names = list(args.prewarm or ())
    if "all" in prewarm_names:
        prewarm_names = list(MACHINE_NAMES)
    for name in prewarm_names:
        if name not in ALL_MACHINE_NAMES:
            print(f"serve --prewarm: unknown machine {name!r}",
                  file=sys.stderr)
            return 2
    config = ServerConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        workers=args.workers,
        chunk_size=args.chunk_size,
        queue=QueuePolicy(
            max_inflight=args.max_inflight,
            per_client_inflight=args.per_client,
        ),
        window_seconds=args.window_ms / 1000.0,
        submit_threads=args.submit_threads,
        prewarm=tuple(
            (name, args.prewarm_backend) for name in prewarm_names
        ),
        default_deadline_seconds=args.deadline,
        drain_seconds=args.drain,
    )
    print(f"repro serve: http://{args.host}:{args.port} "
          f"(workers={args.workers}, max_inflight={args.max_inflight}, "
          f"prewarm={prewarm_names or 'none'})")
    serve(create_app(config), host=args.host, port=args.port)
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.verify import fuzz
    from repro.workloads.trace import write_trace

    def progress(done: int, failures: int) -> None:
        if not args.json and done % 25 == 0:
            print(f"  {done}/{args.cases} cases, {failures} failure(s)")

    report = fuzz(
        seed=args.seed,
        cases=args.cases,
        shrink=not args.no_shrink,
        progress=progress,
    )
    artifacts = []
    if report.failures and args.out:
        os.makedirs(args.out, exist_ok=True)
        for failure in report.failures:
            stem = os.path.join(args.out, f"fuzz_{failure.seed}")
            with open(f"{stem}.hmdes", "w") as handle:
                handle.write(failure.shrunk_source)
            with open(f"{stem}.trace", "w") as handle:
                handle.write(write_trace(
                    failure.case.blocks, failure.case.machine.name
                ))
            with open(f"{stem}.json", "w") as handle:
                json.dump(failure.summary(), handle, indent=2)
            artifacts.extend(
                [f"{stem}.hmdes", f"{stem}.trace", f"{stem}.json"]
            )
    if args.json:
        print(json.dumps({
            "seed": report.seed,
            "cases": report.cases,
            "failures": [f.summary() for f in report.failures],
            "artifacts": artifacts,
        }, indent=2))
    else:
        print(
            f"fuzz: {report.cases} cases from seed {report.seed}: "
            f"{len(report.failures)} failure(s)"
        )
        for failure in report.failures:
            ops, options, usages = failure.shrunk_size
            print(
                f"  seed {failure.seed}: "
                f"{len(failure.divergences)} divergence(s), shrunk to "
                f"{ops} op(s) / {options} option(s) / {usages} usage(s) "
                f"in {failure.shrink_steps} cut(s)"
            )
            for divergence in failure.divergences[:5]:
                print(f"    {divergence}")
        for path in artifacts:
            print(f"  wrote {path}")
    return 1 if report.failures else 0


def _obs_demo_run(args: argparse.Namespace):
    """Run one observed workload for ``stats``/``trace``.

    Returns the engine so its weakly-referenced ``CheckStats`` view
    stays alive until the caller has printed the registry.
    """
    from repro import obs
    from repro.engine import create_engine
    from repro.engine.cache import DescriptionCache
    from repro.scheduler import schedule_workload
    from repro.workloads import WorkloadConfig, generate_blocks

    obs.enable()
    if getattr(args, "memory", False):
        obs.enable_memory()
    obs.reset()
    machine = get_machine(args.machine)
    blocks = generate_blocks(
        machine, WorkloadConfig(total_ops=args.ops, seed=args.seed)
    )
    # A private cold cache: the demo always shows the whole pipeline
    # (hmdes -> transforms -> compile), not a warm-process shortcut.
    engine = create_engine(
        args.backend, machine, stage=args.stage,
        cache=DescriptionCache(name="demo"),
    )
    schedule_workload(machine, None, blocks, engine=engine)
    return engine


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro import obs

    engine = _obs_demo_run(args)
    if args.prom:
        print(obs.to_prometheus(obs.REGISTRY), end="")
    else:
        print(obs.format_metrics(obs.REGISTRY))
        quantiles = obs.format_quantiles(obs.REGISTRY)
        if quantiles:
            print("\nestimated quantiles (bucket interpolation):")
            print(quantiles)
    del engine
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.obs import prof

    engine = None
    if args.input:
        with open(args.input) as handle:
            roots = obs.trace_from_jsonl(handle.read())
    else:
        engine = _obs_demo_run(args)
        roots = obs.TRACER.roots
    if args.flamegraph:
        text = prof.flamegraph(roots)
        if text:
            print(text)
    elif args.hot:
        print(prof.format_hot_spans(roots, limit=args.limit))
    elif getattr(args, "memory", False) and args.input is None:
        print(obs.format_trace(roots))
        print()
        print(prof.format_memory(roots))
    else:
        print(obs.format_trace(roots))
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(obs.trace_to_jsonl(roots))
        print(f"wrote {args.output}")
    del engine
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.obs import bench as bench_mod
    from repro.obs import perf

    if args.list:
        for kernel in bench_mod.KERNELS:
            print(f"{kernel.name:28s} {kernel.description}")
            for metric in kernel.metrics():
                print(f"  {metric}")
        return 0

    results_dir = os.path.join("benchmarks", "results")
    baseline_path = args.baseline or os.path.join(
        results_dir, "BENCH_baseline.json"
    )
    history_path = args.history or os.path.join(
        results_dir, "BENCH_history.jsonl"
    )
    summary_path = args.summary or "BENCH_summary.json"

    def progress(name: str) -> None:
        if not args.json:
            print(f"bench: {name} ...", file=sys.stderr)

    records, skipped = bench_mod.run_suite(
        only=args.suite,
        repeats=args.repeats,
        smoke=True if args.smoke else None,
        progress=progress,
    )
    if not records:
        print("bench: no records produced", file=sys.stderr)
        return 2
    if not args.no_history:
        perf.append_history(history_path, records)
    if args.update_baseline:
        perf.write_baseline(baseline_path, records)
    baseline = perf.load_baseline(baseline_path)
    comparisons = perf.compare_records(records, baseline) if baseline else []
    summary = perf.write_summary(summary_path, records, comparisons)
    regressions = perf.regressions(comparisons)

    if args.json:
        print(json.dumps({
            "records": [r.to_dict() for r in records],
            "skipped": [
                {"kernel": name, "reason": reason}
                for name, reason in skipped
            ],
            "comparisons": [c.to_dict() for c in comparisons],
            "summary": summary,
            "baseline": baseline_path if baseline else None,
            "regressions": len(regressions),
        }, indent=2))
    else:
        if comparisons:
            print(perf.format_comparisons(comparisons))
        else:
            for record in records:
                print(f"{record.metric:42s} {record.value:.6g} "
                      f"{record.unit}")
            print("(no baseline -- pin one with "
                  "`repro bench --update-baseline`)")
        for name, reason in skipped:
            print(f"skipped {name}: {reason}")
        if not args.no_history:
            print(f"history: {history_path}")
        print(f"summary: {summary_path}")
        if args.update_baseline:
            print(f"baseline: {baseline_path}")

    if args.check:
        if not baseline:
            print(
                f"bench --check: no baseline at {baseline_path}; pin one "
                "with `repro bench --update-baseline`",
                file=sys.stderr,
            )
            return 2
        for comparison in regressions:
            p_text = (
                "n/a" if comparison.p_value is None
                else f"{comparison.p_value:.4f}"
            )
            print(
                f"REGRESSION {comparison.metric}: {comparison.value:.6g} "
                f"vs baseline {comparison.baseline:.6g} "
                f"({comparison.delta_pct:+.1f}%, "
                f"tolerance {comparison.tolerance * 100:.0f}%, "
                f"p={p_text})",
                file=sys.stderr,
            )
        if regressions:
            return 1
        mismatched = [
            c for c in comparisons if c.status == "scale-mismatch"
        ]
        if mismatched:
            print(
                f"bench --check: {len(mismatched)} metric(s) skipped -- "
                "baseline was pinned at a different workload scale "
                "(smoke vs full); re-pin with `repro bench "
                "--update-baseline` at this scale",
                file=sys.stderr,
            )
        print("bench --check: ok", file=sys.stderr)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import main as report_main

    report_main(["--ops", str(args.ops), "-o", args.output])
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Machine-description optimization toolkit (MICRO-29 1996 "
            "reproduction)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("machines", help="list built-in machines")

    commands.add_parser(
        "engines", help="list registered constraint-check backends"
    )

    tables = commands.add_parser("tables", help="regenerate paper tables")
    tables.add_argument("--ops", type=int, default=10000)
    tables.add_argument("--table", type=int, default=None)

    figures = commands.add_parser("figures",
                                  help="regenerate paper figures")
    figures.add_argument("--ops", type=int, default=10000)
    figures.add_argument("--name", default=None)

    lint = commands.add_parser("lint", help="lint a machine description")
    lint.add_argument("file", nargs="?", default=None)
    lint.add_argument("--machine", type=_machine_arg, metavar="MACHINE",
                      default=None)
    lint.add_argument("--strict", action="store_true",
                      help="exit 1 on warnings")

    optimize_cmd = commands.add_parser(
        "optimize", help="optimize an HMDES file"
    )
    optimize_cmd.add_argument("file")
    optimize_cmd.add_argument("-o", "--output", required=True)
    optimize_cmd.add_argument(
        "--direction", choices=("forward", "backward"), default="forward"
    )

    compile_cmd = commands.add_parser(
        "compile", help="compile an HMDES file (or machine) to LMDES"
    )
    compile_cmd.add_argument("file", nargs="?", default=None)
    compile_cmd.add_argument("--machine", type=_machine_arg, metavar="MACHINE",
                             default=None)
    compile_cmd.add_argument("--stage", type=int, default=4)
    compile_cmd.add_argument("--no-bitvector", action="store_true")
    compile_cmd.add_argument("-o", "--output", required=True)

    expand = commands.add_parser(
        "expand", help="expand AND/OR-trees to flat OR-trees"
    )
    expand.add_argument("file")
    expand.add_argument("-o", "--output", required=True)

    generate = commands.add_parser(
        "generate", help="synthesize a workload trace"
    )
    generate.add_argument("--machine", type=_machine_arg, metavar="MACHINE",
                          required=True)
    generate.add_argument("--ops", type=int, default=5000)
    generate.add_argument("--seed", type=int, default=20161202)
    generate.add_argument("-o", "--output", required=True)

    schedule = commands.add_parser(
        "schedule", help="schedule a workload and report statistics"
    )
    schedule.add_argument("--machine", type=_machine_arg, metavar="MACHINE",
                          default=None)
    schedule.add_argument("--trace", default=None)
    schedule.add_argument("--lmdes", default=None,
                          help="schedule against a compiled LMDES file")
    schedule.add_argument("--ops", type=int, default=10000)
    schedule.add_argument("--seed", type=int, default=20161202)
    schedule.add_argument("--rep", choices=("or", "andor"),
                          default="andor")
    schedule.add_argument("--stage", type=int, default=4,
                          help="transformation stage 0-4")
    schedule.add_argument("--no-bitvector", action="store_true")
    from repro.engine import engine_names

    schedule.add_argument(
        "--backend", choices=engine_names(), default=None,
        help=(
            "constraint-check backend from the engine registry "
            "(overrides --rep/--no-bitvector)"
        ),
    )
    schedule.add_argument(
        "--json", action="store_true",
        help=(
            "emit a machine-readable result document with per-phase "
            "timings and per-transform effects (forces obs on)"
        ),
    )
    schedule.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the run's span tree as JSONL (forces obs on)",
    )

    exact = commands.add_parser(
        "exact",
        help=(
            "schedule a workload with the branch-and-bound exact "
            "scheduler and report the optimality gap"
        ),
    )
    exact.add_argument("--machine", type=_machine_arg, metavar="MACHINE",
                       required=True)
    exact.add_argument("--ops", type=int, default=200,
                       help="workload size (exact search is exponential; "
                            "keep this small)")
    exact.add_argument("--seed", type=int, default=20161202)
    exact.add_argument("--stage", type=int, default=4,
                       help="transformation stage 0-4")
    exact.add_argument(
        "--backend", choices=engine_names(scheduler="exact"),
        default="exact",
        help="exact-scheduler backend from the engine registry",
    )
    exact.add_argument(
        "--node-budget", type=int, default=None, metavar="N",
        help="search-node budget per block (default: the registry's)",
    )
    exact.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per block (default: unbounded)",
    )
    exact.add_argument(
        "--max-block-ops", type=int, default=None, metavar="N",
        help=(
            "largest block to search exactly; bigger blocks keep the "
            "heuristic schedule (default: the registry's cap)"
        ),
    )
    exact.add_argument("--json", action="store_true",
                       help="emit a machine-readable result document "
                            "(forces obs on)")

    batch = commands.add_parser(
        "schedule-batch",
        help=(
            "schedule a workload sharded across a process pool, with a "
            "persistent on-disk description cache"
        ),
    )
    batch.add_argument("--machine", type=_machine_arg, metavar="MACHINE",
                       default=None)
    batch.add_argument("--trace", default=None)
    batch.add_argument("--lmdes", default=None,
                       help="schedule against a compiled LMDES file")
    batch.add_argument("--ops", type=int, default=10000)
    batch.add_argument("--seed", type=int, default=20161202)
    batch.add_argument("--stage", type=int, default=4,
                       help="transformation stage 0-4")
    batch.add_argument(
        "--backend", choices=engine_names(), default=None,
        help="constraint-check backend (default: bitvector)",
    )
    batch.add_argument("--workers", type=int, default=1,
                       help="process-pool size (1 = in-process)")
    batch.add_argument("--chunk-size", type=int, default=32,
                       help="blocks per dispatched task")
    batch.add_argument(
        "--cache-dir", default=None,
        help=(
            "persistent description-cache directory (warm runs "
            "load_lmdes instead of recompiling)"
        ),
    )
    batch.add_argument(
        "--retries", type=int, default=0,
        help="extra attempts per chunk on retryable failures",
    )
    batch.add_argument(
        "--chunk-timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "per-chunk wall-clock budget on the pool path; a chunk "
            "past it is retried on a fresh pool"
        ),
    )
    batch.add_argument(
        "--on-error", choices=("raise", "report"), default="raise",
        help=(
            "what to do with blocks that fail deterministically: "
            "raise a ServiceError, or report them as typed records in "
            "the result"
        ),
    )
    batch.add_argument(
        "--verify", action="store_true",
        help=(
            "replay the assembled schedules through the independent "
            "oracle after the run"
        ),
    )
    batch.add_argument("--json", action="store_true",
                       help="emit a machine-readable result document")
    batch.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help=(
            "write the run's span tree as JSONL, including per-chunk "
            "worker spans (forces obs on)"
        ),
    )

    from repro.machines.synth import family_names

    sweep = commands.add_parser(
        "sweep",
        help=(
            "schedule one fixed workload across a seeded synthetic "
            "machine fleet and report transform effectiveness vs. "
            "machine complexity"
        ),
    )
    sweep.add_argument(
        "--family", choices=family_names(), default="superscalar-wide",
        help="synth family preset the fleet is drawn from",
    )
    sweep.add_argument("--count", type=int, default=100,
                       help="fleet size (variant indices 0..count-1)")
    sweep.add_argument("--seed", type=int, default=0,
                       help="fleet seed")
    sweep.add_argument("--ops", type=int, default=64,
                       help="workload ops scheduled on every variant")
    sweep.add_argument("--workload-seed", type=int, default=20161202)
    sweep.add_argument(
        "--backend", choices=engine_names(scheduler="list"),
        default="bitvector",
        help="constraint-check backend (default: bitvector)",
    )
    sweep.add_argument("--stage", type=int, default=4,
                       help="transformation stage 0-4")
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="submitter threads (results identical at any value)",
    )
    sweep.add_argument(
        "--no-verify", action="store_true",
        help="skip the per-variant oracle replay",
    )
    sweep.add_argument(
        "--exact-sample", type=int, default=0, metavar="N",
        help=(
            "run the exact scheduler on every Nth variant and record "
            "the optimality gap (0 = off)"
        ),
    )
    sweep.add_argument(
        "--cache-dir", default=None,
        help="persistent description-cache directory for the fleet",
    )
    sweep.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the full report (meta + per-variant rows) as JSONL",
    )
    sweep.add_argument("--json", action="store_true",
                       help="emit the machine-readable summary document")

    serve = commands.add_parser(
        "serve",
        help=(
            "run the long-running scheduling service: POST workloads, "
            "get schedules out of one warm description cache"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8181)
    serve.add_argument(
        "--cache-dir", default=None,
        help="persistent description-cache directory shared by all "
             "requests",
    )
    serve.add_argument("--workers", type=int, default=1,
                       help="batch-pool size for /v1/schedule/batch runs")
    serve.add_argument("--chunk-size", type=int, default=32,
                       help="blocks per dispatched batch task")
    serve.add_argument(
        "--max-inflight", type=int, default=64,
        help="admitted requests across all clients before 429",
    )
    serve.add_argument(
        "--per-client", type=int, default=8,
        help="admitted requests per client id before 429",
    )
    serve.add_argument(
        "--window-ms", type=float, default=4.0,
        help="micro-batch window: requests arriving within it share "
             "one batch run",
    )
    serve.add_argument(
        "--submit-threads", type=int, default=4,
        help="executor threads driving batch runs",
    )
    serve.add_argument(
        "--prewarm", action="append", default=None, metavar="MACHINE",
        help="compile MACHINE's description at startup (repeatable; "
             "'all' prewarm every built-in machine)",
    )
    serve.add_argument(
        "--prewarm-backend", default="bitvector",
        choices=engine_names(),
        help="backend to prewarm (default: bitvector)",
    )
    serve.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="default per-request deadline when the client sets none",
    )
    serve.add_argument(
        "--drain", type=float, default=10.0, metavar="SECONDS",
        help="graceful-shutdown budget for in-flight requests",
    )

    verify = commands.add_parser(
        "verify",
        help=(
            "replay schedules through the independent oracle, or check "
            "the golden conformance corpus"
        ),
    )
    verify.add_argument("--machine", type=_machine_arg, metavar="MACHINE",
                        default=None,
                        help="one machine (default: the paper's four)")
    verify.add_argument("--backend", choices=engine_names(), default=None,
                        help="one backend (default: every registered one)")
    verify.add_argument("--ops", type=int, default=2000)
    verify.add_argument("--seed", type=int, default=20161202)
    verify.add_argument("--stage", type=int, default=4,
                        help="transformation stage 0-4")
    verify.add_argument("--direction", choices=("forward", "backward"),
                        default="forward")
    verify.add_argument(
        "--golden", default=None, metavar="DIR",
        help="check the golden corpus under DIR instead of scheduling",
    )
    verify.add_argument(
        "--regen", action="store_true",
        help="with --golden: regenerate the corpus files",
    )
    verify.add_argument("--json", action="store_true",
                        help="emit machine-readable verdicts")

    fuzz_cmd = commands.add_parser(
        "fuzz",
        help=(
            "differential-fuzz generated HMDES descriptions across "
            "every backend and transform stage"
        ),
    )
    fuzz_cmd.add_argument("--seed", type=int, default=0,
                          help="base seed; case i uses seed+i")
    fuzz_cmd.add_argument("--cases", type=int, default=50)
    fuzz_cmd.add_argument(
        "--no-shrink", action="store_true",
        help="report raw failing cases without minimizing them",
    )
    fuzz_cmd.add_argument(
        "--out", default=None, metavar="DIR",
        help=(
            "write each failure's minimal reproducer (.hmdes, .trace, "
            ".json) under DIR"
        ),
    )
    fuzz_cmd.add_argument("--json", action="store_true",
                          help="emit a machine-readable report")

    def _obs_demo_args(sub, machine_required: bool = True) -> None:
        sub.add_argument("--machine", type=_machine_arg, metavar="MACHINE",
                         required=machine_required, default=None)
        sub.add_argument("--backend", choices=engine_names(),
                         default="bitvector")
        sub.add_argument("--ops", type=int, default=2000)
        sub.add_argument("--seed", type=int, default=20161202)
        sub.add_argument("--stage", type=int, default=4,
                         help="transformation stage 0-4")
        sub.add_argument(
            "--memory", action="store_true",
            help=(
                "record tracemalloc peak/net bytes on memory-capable "
                "spans (slower; implies REPRO_OBS_MEMORY=1)"
            ),
        )

    stats = commands.add_parser(
        "stats",
        help=(
            "run one observed workload and print the metrics registry"
        ),
    )
    _obs_demo_args(stats)
    stats.add_argument("--prom", action="store_true",
                       help="Prometheus text exposition instead of the "
                            "human view")

    trace = commands.add_parser(
        "trace",
        help=(
            "run one observed workload (or load a saved trace) and "
            "print its span tree, hot spans, or flamegraph"
        ),
    )
    _obs_demo_args(trace, machine_required=False)
    trace.add_argument(
        "--input", default=None, metavar="FILE",
        help="analyze a saved JSONL trace instead of running a workload",
    )
    trace.add_argument(
        "--hot", action="store_true",
        help="print the per-span-name self-time table instead of the tree",
    )
    trace.add_argument(
        "--limit", type=int, default=20,
        help="rows in the --hot table",
    )
    trace.add_argument(
        "--flamegraph", action="store_true",
        help=(
            "print collapsed stacks (name;name;name microseconds) for "
            "flamegraph.pl / speedscope"
        ),
    )
    trace.add_argument("-o", "--output", default=None,
                       help="also write the trace as JSONL")

    bench = commands.add_parser(
        "bench",
        help=(
            "run the curated benchmark suite with normalized records, "
            "history, and baseline regression gating"
        ),
    )
    bench.add_argument("--list", action="store_true",
                       help="list kernels and their metrics, then exit")
    bench.add_argument(
        "--suite", action="append", default=None, metavar="PAT",
        help="only kernels whose name contains PAT (repeatable)",
    )
    bench.add_argument(
        "--repeats", type=int, default=None,
        help="timed repeats per kernel (default 5; 3 in smoke mode)",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="reduced workloads and repeats (REPRO_BENCH_SMOKE=1)",
    )
    bench.add_argument(
        "--check", action="store_true",
        help=(
            "compare against the pinned baseline and exit 1 on a "
            "confirmed regression"
        ),
    )
    bench.add_argument(
        "--update-baseline", action="store_true",
        help="pin this run's records as the new baseline",
    )
    bench.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="baseline path (default benchmarks/results/BENCH_baseline.json)",
    )
    bench.add_argument(
        "--history", default=None, metavar="FILE",
        help="history path (default benchmarks/results/BENCH_history.jsonl)",
    )
    bench.add_argument(
        "--summary", default=None, metavar="FILE",
        help="summary path (default BENCH_summary.json in the cwd)",
    )
    bench.add_argument(
        "--no-history", action="store_true",
        help="do not append this run to the history file",
    )
    bench.add_argument("--json", action="store_true",
                       help="emit the records/comparisons as JSON")

    report = commands.add_parser(
        "report", help="regenerate EXPERIMENTS.md"
    )
    report.add_argument("--ops", type=int, default=20000)
    report.add_argument("-o", "--output", default="EXPERIMENTS.md")

    return parser


_HANDLERS = {
    "machines": _cmd_machines,
    "engines": _cmd_engines,
    "compile": _cmd_compile,
    "tables": _cmd_tables,
    "figures": _cmd_figures,
    "lint": _cmd_lint,
    "optimize": _cmd_optimize,
    "expand": _cmd_expand,
    "generate": _cmd_generate,
    "schedule": _cmd_schedule,
    "exact": _cmd_exact,
    "schedule-batch": _cmd_schedule_batch,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "verify": _cmd_verify,
    "fuzz": _cmd_fuzz,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "lint" and not args.file and not args.machine:
        parser.error("lint needs a FILE or --machine")
    if args.command == "compile" and not args.file and not args.machine:
        parser.error("compile needs a FILE or --machine")
    if args.command == "trace" and not args.machine and not args.input:
        parser.error("trace needs --machine or --input FILE")
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
