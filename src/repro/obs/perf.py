"""Continuous-performance records: schema, history, baselines, gates.

Every benchmark number this repo produces flows through one normalized
record type so results are comparable *across runs and machines*:

* :class:`BenchRecord` -- suite, metric, unit, representative value,
  the raw per-repeat values, and an environment fingerprint (git sha,
  python/numpy versions, cpu count, platform).
* **History** (:func:`append_history`) -- an append-only JSONL file,
  one record per line; ``benchmarks/results/BENCH_history.jsonl`` is
  the durable perf trajectory CI uploads per run.
* **Baseline** (:func:`write_baseline` / :func:`load_baseline`) -- a
  pinned snapshot, one record per metric, that later runs compare
  against.
* **Regression detection** (:func:`compare_records`) -- a two-stage
  gate.  Stage one is a *threshold* on representative values (min of N
  repeats for lower-is-better metrics; min-of-N is the classic noise
  rejector for wall-clock benchmarks).  Stage two *confirms* with a
  one-sided Mann-Whitney rank test over the raw repeat samples, so a
  single noisy outlier cannot fail CI: a regression must both exceed
  the per-metric tolerance and be statistically distinguishable
  (p <= alpha) from the baseline sample.

No third-party stats dependency: the rank test uses an exact
permutation distribution for the small sample sizes benchmarks actually
have, and a tie-corrected normal approximation beyond that.
"""

from __future__ import annotations

import itertools
import json
import math
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Significance level for the rank-test confirmation stage.
DEFAULT_ALPHA = 0.05

#: Largest pooled sample for which the permutation distribution is
#: enumerated exactly (C(18, 9) = 48620 subsets -- instant).
_EXACT_LIMIT = 18

_DIRECTIONS = ("lower", "higher", "info")


# ----------------------------------------------------------------------
# Schema
# ----------------------------------------------------------------------


def env_fingerprint() -> Dict[str, Any]:
    """Where this measurement came from: code + interpreter + hardware."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        sha = None
    try:
        import numpy
        numpy_version: Optional[str] = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "git_sha": sha,
        "python": platform.python_version(),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count(),
        "platform": sys.platform,
        "machine": platform.machine(),
    }


@dataclass
class BenchRecord:
    """One normalized benchmark measurement."""

    suite: str                    #: kernel / bench-script the metric belongs to
    metric: str                   #: globally unique metric name
    unit: str                     #: "s", "x", "ops/s", "count", ...
    value: float                  #: representative value (see below)
    values: List[float] = field(default_factory=list)  #: raw per-repeat samples
    repeats: int = 1
    direction: str = "lower"      #: "lower" | "higher" | "info"
    tolerance: float = 0.25      #: relative threshold before a delta counts
    timestamp: float = 0.0
    env: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS}: {self.direction!r}"
            )
        if not self.values:
            self.values = [self.value]
        self.repeats = len(self.values)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "suite": self.suite,
            "metric": self.metric,
            "unit": self.unit,
            "value": self.value,
            "values": list(self.values),
            "repeats": self.repeats,
            "direction": self.direction,
            "tolerance": self.tolerance,
            "timestamp": self.timestamp,
            "env": dict(self.env),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchRecord":
        return cls(
            suite=data["suite"],
            metric=data["metric"],
            unit=data.get("unit", ""),
            value=float(data["value"]),
            values=[float(v) for v in data.get("values", ())],
            direction=data.get("direction", "lower"),
            tolerance=float(data.get("tolerance", 0.25)),
            timestamp=float(data.get("timestamp", 0.0)),
            env=dict(data.get("env", {})),
        )


def representative(values: Sequence[float], direction: str) -> float:
    """The value a sample is judged by: min for lower-is-better (best
    of N rejects scheduler noise), max for higher-is-better, mean for
    informational metrics."""
    if direction == "lower":
        return min(values)
    if direction == "higher":
        return max(values)
    return sum(values) / len(values)


def make_record(
    suite: str,
    metric: str,
    values: Sequence[float],
    unit: str = "s",
    direction: str = "lower",
    tolerance: float = 0.25,
    env: Optional[Dict[str, Any]] = None,
    timestamp: Optional[float] = None,
) -> BenchRecord:
    values = [float(v) for v in values]
    return BenchRecord(
        suite=suite,
        metric=metric,
        unit=unit,
        value=representative(values, direction),
        values=values,
        direction=direction,
        tolerance=tolerance,
        timestamp=time.time() if timestamp is None else timestamp,
        env=dict(env) if env else env_fingerprint(),
    )


def records_from_payload(
    suite: str, payload: Dict[str, Any], env: Optional[Dict[str, Any]] = None
) -> List[BenchRecord]:
    """Normalize a legacy bench-script JSON payload into info records.

    The ~30 ``benchmarks/bench_*.py`` scripts each emit an ad-hoc dict;
    every top-level numeric scalar becomes one informational record so
    historical payloads land in ``BENCH_history.jsonl`` without
    per-script schema work.  Nested dicts flatten with dotted keys.
    """
    env = dict(env) if env else env_fingerprint()
    now = time.time()
    records: List[BenchRecord] = []

    def visit(prefix: str, node: Any) -> None:
        if isinstance(node, bool):
            return
        if isinstance(node, (int, float)):
            records.append(make_record(
                suite, f"{suite}.{prefix}", [float(node)],
                unit="", direction="info", env=env, timestamp=now,
            ))
        elif isinstance(node, dict):
            for key, value in node.items():
                visit(f"{prefix}.{key}" if prefix else str(key), value)

    visit("", payload)
    return records


# ----------------------------------------------------------------------
# History + baseline files
# ----------------------------------------------------------------------


def append_history(path: str, records: Iterable[BenchRecord]) -> int:
    """Append records to the JSONL history; returns how many were written."""
    records = list(records)
    if not records:
        return 0
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
    return len(records)


def load_history(path: str) -> List[BenchRecord]:
    if not os.path.exists(path):
        return []
    out: List[BenchRecord] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(BenchRecord.from_dict(json.loads(line)))
    return out


def write_baseline(
    path: str, records: Iterable[BenchRecord]
) -> Dict[str, Any]:
    """Pin the given records as the comparison baseline (one per metric)."""
    by_metric = {record.metric: record.to_dict() for record in records}
    payload = {
        "version": 1,
        "created": time.time(),
        "env": env_fingerprint(),
        "records": by_metric,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def load_baseline(path: str) -> Dict[str, BenchRecord]:
    """Baseline records keyed by metric; empty when no file exists."""
    if not os.path.exists(path):
        return {}
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return {
        metric: BenchRecord.from_dict(data)
        for metric, data in payload.get("records", {}).items()
    }


# ----------------------------------------------------------------------
# Mann-Whitney one-sided rank test (no scipy)
# ----------------------------------------------------------------------


def _ranks(pooled: Sequence[float]) -> List[float]:
    """Average ranks (1-based) with standard tie handling."""
    order = sorted(range(len(pooled)), key=lambda i: pooled[i])
    ranks = [0.0] * len(pooled)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and pooled[order[j + 1]] == pooled[order[i]]:
            j += 1
        avg = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        i = j + 1
    return ranks


def rank_p_greater(
    xs: Sequence[float], ys: Sequence[float]
) -> Optional[float]:
    """One-sided Mann-Whitney p-value for "``xs`` tend larger than ``ys``".

    Exact permutation distribution when the pooled sample is small
    (benchmarks run 3-10 repeats, where the normal approximation is
    meaningless), tie-corrected normal approximation otherwise.
    Returns ``None`` when either sample has fewer than 2 observations
    -- no distributional statement is possible, and callers fall back
    to the threshold-only decision.

    Note the decision rule downstream is ``p <= alpha`` *inclusive*: at
    3-vs-3 repeats complete separation gives exactly p = 1/20 = 0.05,
    which must count as significant or the gate could never fire in
    smoke mode.
    """
    nx, ny = len(xs), len(ys)
    if nx < 2 or ny < 2:
        return None
    pooled = list(xs) + list(ys)
    ranks = _ranks(pooled)
    observed = sum(ranks[:nx])
    n = nx + ny
    if n <= _EXACT_LIMIT:
        count = 0
        total = 0
        # Slack for float average-rank arithmetic.
        eps = 1e-9
        for combo in itertools.combinations(range(n), nx):
            total += 1
            if sum(ranks[i] for i in combo) >= observed - eps:
                count += 1
        return count / total
    # Normal approximation with tie correction and continuity correction.
    u = observed - nx * (nx + 1) / 2.0
    mean = nx * ny / 2.0
    tie_term = 0.0
    seen: Dict[float, int] = {}
    for value in pooled:
        seen[value] = seen.get(value, 0) + 1
    for t in seen.values():
        tie_term += t ** 3 - t
    var = (nx * ny / 12.0) * ((n + 1) - tie_term / (n * (n - 1)))
    if var <= 0:
        return 1.0  # all observations identical: no evidence either way
    z = (u - mean - 0.5) / math.sqrt(var)
    return 0.5 * math.erfc(z / math.sqrt(2.0))


# ----------------------------------------------------------------------
# Comparison + summary
# ----------------------------------------------------------------------


@dataclass
class Comparison:
    """One metric's current-vs-baseline verdict."""

    metric: str
    #: ok|regression|suspect|improved|new|missing|info|scale-mismatch
    status: str
    unit: str = ""
    direction: str = "lower"
    value: Optional[float] = None
    baseline: Optional[float] = None
    delta_pct: Optional[float] = None
    p_value: Optional[float] = None
    tolerance: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "status": self.status,
            "unit": self.unit,
            "direction": self.direction,
            "value": self.value,
            "baseline": self.baseline,
            "delta_pct": self.delta_pct,
            "p_value": self.p_value,
            "tolerance": self.tolerance,
        }


def compare_records(
    current: Iterable[BenchRecord],
    baseline: Dict[str, BenchRecord],
    alpha: float = DEFAULT_ALPHA,
) -> List[Comparison]:
    """Judge each current record against the pinned baseline.

    ``regression`` requires *both* the representative value to exceed
    the per-metric relative tolerance in the bad direction *and* the
    rank test to confirm the samples differ (``p <= alpha``); threshold
    breaches the rank test cannot confirm come back as ``suspect``
    (reported, not failing).  Baseline metrics absent from the current
    run come back ``missing``.
    """
    current = list(current)
    out: List[Comparison] = []
    seen = set()
    for record in current:
        seen.add(record.metric)
        base = baseline.get(record.metric)
        comparison = Comparison(
            metric=record.metric,
            status="ok",
            unit=record.unit,
            direction=record.direction,
            value=record.value,
            tolerance=record.tolerance,
        )
        if base is None:
            comparison.status = "new"
            out.append(comparison)
            continue
        comparison.baseline = base.value
        if base.value:
            comparison.delta_pct = (
                (record.value - base.value) / abs(base.value) * 100.0
            )
        if record.env.get("smoke") != base.env.get("smoke"):
            # Smoke and full runs time different workloads; comparing
            # them would only manufacture false regressions.  Re-pin
            # the baseline at the scale being checked instead.
            comparison.status = "scale-mismatch"
            out.append(comparison)
            continue
        if record.direction == "info" or not base.value:
            comparison.status = "info"
            out.append(comparison)
            continue
        if record.direction == "lower":
            worse = record.value > base.value * (1.0 + record.tolerance)
            better = record.value < base.value * (1.0 - record.tolerance)
            p = rank_p_greater(record.values, base.values)
        else:
            worse = record.value < base.value * (1.0 - record.tolerance)
            better = record.value > base.value * (1.0 + record.tolerance)
            p = rank_p_greater(base.values, record.values)
        comparison.p_value = p
        if worse:
            if p is None or p <= alpha:
                comparison.status = "regression"
            else:
                comparison.status = "suspect"
        elif better:
            comparison.status = "improved"
        out.append(comparison)
    for metric, base in sorted(baseline.items()):
        if metric not in seen:
            out.append(Comparison(
                metric=metric, status="missing", unit=base.unit,
                direction=base.direction, baseline=base.value,
            ))
    return out


def regressions(comparisons: Iterable[Comparison]) -> List[Comparison]:
    return [c for c in comparisons if c.status == "regression"]


def write_summary(
    path: str,
    records: Iterable[BenchRecord],
    comparisons: Iterable[Comparison],
    env: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """The repo-root ``BENCH_summary.json``: latest value + delta per
    metric, plus the run's environment fingerprint."""
    comparisons = {c.metric: c for c in comparisons}
    metrics: Dict[str, Any] = {}
    for record in records:
        entry: Dict[str, Any] = {
            "suite": record.suite,
            "value": record.value,
            "unit": record.unit,
            "direction": record.direction,
            "repeats": record.repeats,
        }
        comparison = comparisons.get(record.metric)
        if comparison is not None:
            entry["status"] = comparison.status
            entry["baseline"] = comparison.baseline
            entry["delta_pct"] = comparison.delta_pct
        metrics[record.metric] = entry
    payload = {
        "version": 1,
        "generated": time.time(),
        "env": dict(env) if env else env_fingerprint(),
        "metrics": metrics,
    }
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def format_comparisons(comparisons: Sequence[Comparison]) -> str:
    """Human table for ``repro bench``: metric, value, baseline, delta."""
    if not comparisons:
        return "(no baseline -- run `repro bench --update-baseline`)"
    rows = [("metric", "status", "value", "baseline", "delta", "p")]
    for c in comparisons:
        rows.append((
            c.metric,
            c.status,
            "-" if c.value is None else f"{c.value:.6g}",
            "-" if c.baseline is None else f"{c.baseline:.6g}",
            "-" if c.delta_pct is None else f"{c.delta_pct:+.1f}%",
            "-" if c.p_value is None else f"{c.p_value:.3f}",
        ))
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    return "\n".join(
        "  ".join(
            cell.ljust(widths[i]) if i < 2 else cell.rjust(widths[i])
            for i, cell in enumerate(row)
        )
        for row in rows
    )


__all__ = [
    "DEFAULT_ALPHA",
    "BenchRecord",
    "Comparison",
    "env_fingerprint",
    "representative",
    "make_record",
    "records_from_payload",
    "append_history",
    "load_history",
    "write_baseline",
    "load_baseline",
    "rank_p_greater",
    "compare_records",
    "regressions",
    "write_summary",
    "format_comparisons",
]
