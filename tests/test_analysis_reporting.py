"""Tests for table formatting and figure rendering."""

from repro.analysis.figures import (
    render_and_or_tree,
    render_options_histogram,
    render_or_tree,
    render_reservation_table,
)
from repro.analysis.reporting import format_table, reduction_pct
from repro.core.expand import expand_to_or_tree


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ("Name", "N"), [("abc", 1), ("d", 22)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1]
        assert "-" in lines[2]
        assert lines[3].startswith("abc")

    def test_floats_two_decimals(self):
        text = format_table(("X",), [(1.23456,)])
        assert "1.23" in text

    def test_numeric_right_aligned(self):
        text = format_table(("Value",), [(7,), (1234,)])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("7")


class TestReductionPct:
    def test_standard(self):
        assert reduction_pct(100, 25) == "75.0%"

    def test_growth_is_negative(self):
        assert reduction_pct(100, 104) == "-4.0%"

    def test_zero_before(self):
        assert reduction_pct(0, 10) == "0.0%"


class TestFigureRendering:
    def test_reservation_table_grid(self, load_and_or_tree):
        flat = expand_to_or_tree(load_and_or_tree)
        option = flat.options[0]
        columns = sorted(option.resources(),
                         key=lambda resource: resource.index)
        lines = render_reservation_table(option, columns)
        assert lines[0].startswith("Cycle")
        assert any("X" in line for line in lines[2:])

    def test_or_tree_rendering_lists_options(self, load_and_or_tree):
        text = render_or_tree(expand_to_or_tree(load_and_or_tree))
        assert "4 options" in text
        assert text.count("Option") == 4

    def test_and_or_tree_rendering(self, load_and_or_tree):
        text = render_and_or_tree(load_and_or_tree)
        assert "AND over 3 OR-trees" in text
        assert "4 flat options" in text
        assert " OR " in text

    def test_histogram(self):
        text = render_options_histogram({1: 30, 48: 10})
        assert "75.00%" in text
        assert "#" in text

    def test_histogram_empty(self):
        assert "no attempts" in render_options_histogram({})
