"""The ``repro.api`` facade contract and the deprecation shims.

Satellite of the api_redesign PR: ``repro.api`` is the supported public
surface -- everything in its ``__all__`` must import, the convenience
entry points must agree bit-for-bit with the deep-path equivalents they
wrap, and the legacy deep-path names (``ModuloRUMap`` from the modulo
scheduler, ``staged_mdes``/``FINAL_STAGE`` from the experiments module)
must keep working behind a :class:`DeprecationWarning` that fires
exactly once per name.
"""

import importlib
import warnings

import pytest

from repro import api
from repro._compat import reset_deprecation_warnings
from repro.engine import create_engine
from repro.errors import (
    CacheCorruptionError,
    ChunkTimeoutError,
    ReproError,
    SchedulingError,
    ServiceError,
    WorkerCrashError,
)
from repro.machines import get_machine
from repro.scheduler import schedule_workload
from repro.workloads import WorkloadConfig, generate_blocks

MACHINE = "K5"
STAGE = 4


def workload(ops=120, seed=11):
    machine = get_machine(MACHINE)
    return machine, generate_blocks(
        machine, WorkloadConfig(total_ops=ops, seed=seed)
    )


class TestFacadeSurface:
    def test_every_name_in_all_is_importable(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_error_taxonomy_roots_at_repro_error(self):
        for error_type in (
            SchedulingError, ServiceError, ChunkTimeoutError,
            WorkerCrashError, CacheCorruptionError,
        ):
            assert issubclass(error_type, ReproError)
        for error_type in (ChunkTimeoutError, WorkerCrashError):
            assert issubclass(error_type, ServiceError)
        failure_records = ServiceError("boom", failures=["record"])
        assert failure_records.failures == ["record"]

    def test_compile_machine_matches_deep_path(self):
        from repro.lowlevel.compiled import compile_mdes
        from repro.lowlevel.serialize import save_lmdes
        from repro.transforms.pipeline import staged_mdes

        machine = get_machine(MACHINE)
        deep = compile_mdes(
            staged_mdes(machine.build_andor(), STAGE), bitvector=True
        )
        assert save_lmdes(api.compile_machine(MACHINE, stage=STAGE)) \
            == save_lmdes(deep)

    def test_compile_machine_rejects_unknown_rep(self):
        with pytest.raises(ValueError):
            api.compile_machine(MACHINE, rep="nand")

    def test_get_engine_accepts_name_or_object(self):
        machine = get_machine(MACHINE)
        by_name = api.get_engine("bitvector", MACHINE, stage=STAGE)
        by_object = api.get_engine("bitvector", machine, stage=STAGE)
        assert type(by_name) is type(by_object)
        assert by_name.name == "bitvector"
        assert set(api.engine_names()) >= {"bitvector", "automata"}

    def test_schedule_matches_deep_path(self):
        machine, blocks = workload()
        facade = api.schedule(MACHINE, blocks, backend="bitvector",
                              stage=STAGE)
        deep = schedule_workload(
            machine, None, blocks, keep_schedules=True,
            engine=create_engine("bitvector", machine, stage=STAGE),
        )
        assert [s.signature() for s in facade.schedules] \
            == [s.signature() for s in deep.schedules]
        assert facade.stats == deep.stats
        assert facade.total_cycles == deep.total_cycles

    def test_schedule_batch_reexport_is_the_service_entry_point(self):
        from repro.service import schedule_batch

        assert api.schedule_batch is schedule_batch
        _, blocks = workload(ops=60)
        result = api.schedule_batch(
            MACHINE, blocks,
            api.BatchConfig(workers=1, chunk_size=8, stage=STAGE),
        )
        assert result.total_ops == sum(len(b) for b in blocks)
        assert result.errors == []


class TestDeprecationShims:
    @pytest.fixture(autouse=True)
    def _fresh_warning_state(self):
        reset_deprecation_warnings()
        yield
        reset_deprecation_warnings()

    def _import_warns_once(self, module_name, attr, canonical_module):
        module = importlib.import_module(module_name)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = getattr(module, attr)
            second = getattr(module, attr)
        canonical = getattr(
            importlib.import_module(canonical_module), attr
        )
        assert first is canonical and second is canonical
        deprecations = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1, (
            f"{module_name}.{attr} warned {len(deprecations)} times"
        )
        message = str(deprecations[0].message)
        assert attr in message and canonical_module in message

    def test_modulo_rumap_shim_warns_exactly_once(self):
        self._import_warns_once(
            "repro.modulo.scheduler", "ModuloRUMap",
            "repro.lowlevel.bitvector",
        )

    def test_staged_mdes_shim_warns_exactly_once(self):
        self._import_warns_once(
            "repro.analysis.experiments", "staged_mdes",
            "repro.transforms.pipeline",
        )

    def test_final_stage_shim_warns_exactly_once(self):
        self._import_warns_once(
            "repro.analysis.experiments", "FINAL_STAGE",
            "repro.transforms.pipeline",
        )

    def test_canonical_imports_do_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            from repro.lowlevel.bitvector import ModuloRUMap  # noqa: F401
            from repro.modulo import ModuloRUMap as from_pkg  # noqa: F401
            from repro.transforms.pipeline import (  # noqa: F401
                FINAL_STAGE,
                staged_mdes,
            )
        assert caught == []

    def test_unknown_attribute_still_raises(self):
        import repro.analysis.experiments as experiments
        import repro.modulo.scheduler as scheduler

        with pytest.raises(AttributeError):
            scheduler.no_such_name
        with pytest.raises(AttributeError):
            experiments.no_such_name
