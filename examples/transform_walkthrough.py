#!/usr/bin/env python3
"""Walk the K5 description through every transformation stage.

Prints, after each pipeline stage, the representation size and the
constraint-check cost of scheduling a fixed workload -- the data behind
the paper's incremental Tables 7-13 -- and confirms the schedule itself
never changes.

Run:  python examples/transform_walkthrough.py [machine] [ops]
"""

import sys

from repro.lowlevel import compile_mdes, mdes_size_bytes
from repro.api import WorkloadConfig, generate_blocks, get_machine
from repro.scheduler import schedule_workload
from repro.transforms import run_pipeline


def main(machine_name: str = "K5", total_ops: int = 5000):
    machine = get_machine(machine_name)
    blocks = generate_blocks(machine, WorkloadConfig(total_ops=total_ops))
    pipeline = run_pipeline(machine.build_andor())

    print(f"{machine_name}: {total_ops} ops, AND/OR representation\n")
    header = (
        f"{'stage':26s} {'bytes':>7s} {'opts/att':>9s} {'chks/att':>9s}"
    )
    print(header)
    print("-" * len(header))
    baseline_signature = None
    for stage_name, mdes in zip(pipeline.stage_names, pipeline.stages):
        compiled = compile_mdes(mdes, bitvector=True)
        result = schedule_workload(
            machine, compiled, blocks, keep_schedules=True
        )
        signature = result.signature()
        if baseline_signature is None:
            baseline_signature = signature
        assert signature == baseline_signature, "schedule changed!"
        print(
            f"{stage_name:26s} {mdes_size_bytes(compiled):7d} "
            f"{result.stats.options_per_attempt:9.2f} "
            f"{result.stats.checks_per_attempt:9.2f}"
        )
    print("\nEvery stage produced the exact same schedule (section 4).")


if __name__ == "__main__":
    machine_name = sys.argv[1] if len(sys.argv) > 1 else "K5"
    total_ops = int(sys.argv[2]) if len(sys.argv) > 2 else 5000
    main(machine_name, total_ops)
