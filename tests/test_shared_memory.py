"""Zero-copy shared description tests (:mod:`repro.engine.shared`).

Covers the publish/attach/release lifecycle and its refcounting, the
batch service's sharing gate (fault profiles, LMDES-file runs, the
opt-out knob), parity between shared and unshared pooled runs, the
packed disk-sidecar write-through and its attach fallback, and -- the
acceptance criterion -- that no ``/dev/shm`` segment survives a run,
fault-injected pool restarts included.
"""

import os
from pathlib import Path

import pytest

from repro.engine import create_engine, machine_content_token
from repro.engine.cache import DescriptionCache
from repro.engine.diskcache import DiskDescriptionCache
from repro.engine.shared import SharedDescriptionSpec
from repro.engine import shared
from repro.lowlevel.packed import compiled_to_shared_bytes
from repro.machines import get_machine
from repro.service import BatchConfig, RetryPolicy, schedule_batch
from repro.service import faults
from repro.service.batch import _seed_from_shared, _sharing_enabled
from repro.service.faults import FaultPlan, parse_faults
from tests.conftest import shared_workload

pytestmark = pytest.mark.skipif(
    not shared.available(), reason="needs numpy + shared_memory"
)

MACHINE = "K5"
SHM_DIR = Path("/dev/shm")


def repro_segments():
    """Names of this-library shared segments currently in /dev/shm."""
    if not SHM_DIR.is_dir():  # pragma: no cover - non-Linux fallback
        return set()
    return {p.name for p in SHM_DIR.glob("repro_*")}


def publish_k5():
    machine = get_machine(MACHINE)
    compiled = create_engine("bitvector", machine, stage=4).compiled
    token = machine_content_token(machine)
    spec = shared.publish(
        compiled, MACHINE, token, "andor", 4, True, reduce=False
    )
    return compiled, spec


class TestLifecycle:
    def test_publish_attach_release_round_trip(self):
        compiled, spec = publish_k5()
        assert spec is not None
        assert spec.machine_name == MACHINE
        assert spec.size > 0
        try:
            assert shared.live_segments() == 1
            assert spec.segment in repro_segments()
            attached = shared.attach(spec)
            assert attached is not None
            assert set(attached.constraints) == set(compiled.constraints)
            assert attached.bitvector == compiled.bitvector
        finally:
            shared.release(spec)
        assert shared.live_segments() == 0
        assert spec.segment not in repro_segments()

    def test_publish_is_refcounted_per_digest(self):
        compiled, first = publish_k5()
        _, second = publish_k5()
        assert first is not None and second is not None
        assert second.segment == first.segment
        assert second.digest == first.digest
        assert shared.live_segments() == 1

        shared.release(first)
        assert shared.live_segments() == 1  # one reference still out
        assert first.segment in repro_segments()
        shared.release(second)
        assert shared.live_segments() == 0
        assert first.segment not in repro_segments()

    def test_release_is_forgiving(self):
        shared.release(None)  # no-op
        stale = SharedDescriptionSpec(
            segment="repro_feedfeedfeedfeed_0", digest="feed" * 16,
            machine_name=MACHINE, token="t", rep="andor", stage=4,
            bitvector=True, reduce=False, size=64,
        )
        shared.release(stale)  # unknown digest: no-op, no raise
        assert shared.live_segments() == 0

    def test_attach_missing_segment_returns_none(self):
        stale = SharedDescriptionSpec(
            segment="repro_does_not_exist_0", digest="dead" * 16,
            machine_name=MACHINE, token="t", rep="andor", stage=4,
            bitvector=True, reduce=False, size=64,
        )
        assert shared.attach(stale) is None

    def test_attach_none_spec(self):
        assert shared.attach(None) is None


class TestSharingGate:
    def test_default_config_shares(self):
        assert _sharing_enabled(BatchConfig(), None)
        assert _sharing_enabled(BatchConfig(), FaultPlan())

    def test_opt_out_knob(self):
        config = BatchConfig(shared_descriptions=False)
        assert not _sharing_enabled(config, None)

    def test_lmdes_file_runs_never_share(self):
        config = BatchConfig(lmdes_path="/tmp/some.lmdes.json")
        assert not _sharing_enabled(config, None)

    def test_corrupt_fault_profile_disables_sharing(self):
        plan = parse_faults("seed=1;corrupt@0#*")
        assert not _sharing_enabled(BatchConfig(), plan)

    def test_crash_and_sched_profiles_keep_sharing(self):
        assert _sharing_enabled(BatchConfig(), parse_faults("crash@0"))
        assert _sharing_enabled(
            BatchConfig(), parse_faults("seed=2;sched@0#*")
        )


class TestBatchIntegration:
    def config(self, **kwargs):
        kwargs.setdefault("backend", "bitvector")
        kwargs.setdefault("stage", 4)
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("chunk_size", 4)
        return BatchConfig(**kwargs)

    def test_shared_run_matches_unshared(self):
        machine, blocks = shared_workload(MACHINE, 60, 23)
        on = schedule_batch(machine, blocks, self.config())
        off = schedule_batch(
            machine, blocks, self.config(shared_descriptions=False)
        )
        assert on.shared_descriptions
        assert not off.shared_descriptions
        assert [s.signature() for s in on.schedules] == \
            [s.signature() for s in off.schedules]
        assert on.stats == off.stats
        assert on.total_ops == off.total_ops
        assert on.total_cycles == off.total_cycles

    def test_in_process_run_does_not_share(self):
        machine, blocks = shared_workload(MACHINE, 20, 23)
        result = schedule_batch(machine, blocks, self.config(workers=1))
        assert not result.shared_descriptions

    def test_no_segment_leak_after_run(self):
        machine, blocks = shared_workload(MACHINE, 60, 23)
        before = repro_segments()
        result = schedule_batch(machine, blocks, self.config())
        assert result.shared_descriptions
        assert shared.live_segments() == 0
        assert repro_segments() <= before

    def test_no_segment_leak_with_crash_faults(self):
        machine, blocks = shared_workload(MACHINE, 48, 23)
        before = repro_segments()
        plan = parse_faults("seed=7;crash@0")
        with faults.injected(plan):
            result = schedule_batch(
                machine, blocks,
                self.config(retry=RetryPolicy(retries=2)),
            )
        assert result.shared_descriptions
        assert result.pool_restarts >= 1
        assert shared.live_segments() == 0
        assert repro_segments() <= before

    def test_corrupt_faults_fall_back_to_unshared(self, tmp_path):
        machine, blocks = shared_workload(MACHINE, 24, 23)
        plan = parse_faults("seed=7;corrupt@0")
        with faults.injected(plan):
            result = schedule_batch(
                machine, blocks,
                self.config(
                    cache_dir=str(tmp_path),
                    retry=RetryPolicy(retries=2),
                ),
            )
        assert not result.shared_descriptions
        assert shared.live_segments() == 0

    def test_sidecar_write_through(self, tmp_path):
        machine, blocks = shared_workload(MACHINE, 24, 23)
        result = schedule_batch(
            machine, blocks, self.config(cache_dir=str(tmp_path))
        )
        assert result.shared_descriptions
        sidecars = list(tmp_path.glob("*.packed.bin"))
        assert len(sidecars) == 1
        from repro.lowlevel.packed import SHARED_MAGIC

        assert sidecars[0].read_bytes()[: len(SHARED_MAGIC)] == \
            SHARED_MAGIC


class TestSeedFallback:
    def test_seed_falls_back_to_disk_sidecar(self, tmp_path):
        """A dead segment still seeds the worker via the sidecar."""
        machine = get_machine(MACHINE)
        compiled = create_engine("bitvector", machine, stage=4).compiled
        token = machine_content_token(machine)
        disk = DiskDescriptionCache(tmp_path)
        digest = "ab" * 32
        disk.store_packed(MACHINE, digest, compiled_to_shared_bytes(compiled))

        spec = SharedDescriptionSpec(
            segment="repro_gone_after_crash_0", digest=digest,
            machine_name=MACHINE, token=token, rep="andor", stage=4,
            bitvector=True, reduce=False, size=0,
        )
        cache = DescriptionCache()
        _seed_from_shared(cache, disk, spec)
        key = ("lmdes", MACHINE, token, "andor", 4, True, False)
        assert key in cache._entries
        assert set(cache._entries[key].constraints) == \
            set(compiled.constraints)

    def test_seed_without_disk_is_silent(self):
        spec = SharedDescriptionSpec(
            segment="repro_gone_after_crash_1", digest="cd" * 32,
            machine_name=MACHINE, token="t", rep="andor", stage=4,
            bitvector=True, reduce=False, size=0,
        )
        cache = DescriptionCache()
        _seed_from_shared(cache, None, spec)
        assert not cache._entries
