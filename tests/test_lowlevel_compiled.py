"""Tests for constraint compilation."""

from repro.core.tables import ReservationTable
from repro.core.usage import ResourceUsage
from repro.lowlevel.compiled import (
    CompiledAndOrTree,
    CompiledOption,
    CompiledOrTree,
    compile_mdes,
)


def u(resource, time):
    return ResourceUsage(time, resource)


class TestCompiledOption:
    def test_scalar_one_check_per_usage(self, resources):
        a, b = resources.lookup("D0"), resources.lookup("D1")
        table = ReservationTable((u(a, 0), u(b, 0), u(a, 1)))
        option = CompiledOption.from_table(table, bitvector=False)
        assert len(option.checks) == 3

    def test_bitvector_merges_same_cycle(self, resources):
        a, b = resources.lookup("D0"), resources.lookup("D1")
        table = ReservationTable((u(a, 0), u(b, 0), u(a, 1)))
        option = CompiledOption.from_table(table, bitvector=True)
        assert len(option.checks) == 2
        assert option.checks[0] == (0, a.mask | b.mask)
        assert option.checks[1] == (1, a.mask)

    def test_check_order_follows_usage_order(self, resources):
        a, b = resources.lookup("D0"), resources.lookup("D1")
        table = ReservationTable((u(b, 2), u(a, 0)))
        option = CompiledOption.from_table(table, bitvector=True)
        assert [time for time, _ in option.checks] == [2, 0]

    def test_reserve_masks_cover_all_usages(self, resources):
        a, b = resources.lookup("D0"), resources.lookup("D1")
        table = ReservationTable((u(a, 0), u(b, 0), u(a, 1)))
        for bitvector in (False, True):
            option = CompiledOption.from_table(table, bitvector)
            assert dict(option.reserve_mask_by_time) == {
                0: a.mask | b.mask,
                1: a.mask,
            }


class TestCompileMdes:
    def test_shapes(self, toy_mdes):
        compiled = compile_mdes(toy_mdes)
        constraint = compiled.constraint_for_opcode("LD")
        assert isinstance(constraint, CompiledAndOrTree)
        assert [len(t) for t in constraint.or_trees] == [2, 2, 1]

    def test_flat_compiles_to_or(self, toy_mdes):
        compiled = compile_mdes(toy_mdes.expanded())
        constraint = compiled.constraint_for_opcode("LD")
        assert isinstance(constraint, CompiledOrTree)
        assert len(constraint) == 4

    def test_sharing_preserved(self, resources, load_and_or_tree):
        from repro.core.mdes import Mdes, OperationClass

        mdes = Mdes(
            "T",
            resources,
            op_classes={
                "a": OperationClass("a", load_and_or_tree),
                "b": OperationClass("b", load_and_or_tree),
            },
            opcode_map={"A": "a", "B": "b"},
        )
        compiled = compile_mdes(mdes)
        assert compiled.constraints["a"] is compiled.constraints["b"]
        constraints, or_trees, options = compiled.unique_objects()
        assert len(constraints) == 1
        assert len(or_trees) == 3
        assert len(options) == 5

    def test_unused_trees_compiled(self, toy_mdes, load_and_or_tree):
        from repro.core.mdes import Mdes
        from repro.core.tables import AndOrTree

        dead = AndOrTree(load_and_or_tree.or_trees, name="dead")
        mdes = Mdes(
            toy_mdes.name,
            toy_mdes.resources,
            dict(toy_mdes.op_classes),
            dict(toy_mdes.opcode_map),
            unused_trees={"dead": dead},
        )
        compiled = compile_mdes(mdes)
        assert "dead" in compiled.unused
        constraints, _, _ = compiled.unique_objects()
        assert len(constraints) == 2

    def test_latency_lookup(self, toy_mdes):
        assert compile_mdes(toy_mdes).latency_for_opcode("LD") == 1

    def test_class_name_lookup(self, toy_mdes):
        assert compile_mdes(toy_mdes).class_name_for_opcode("LD") == "load"
