"""Table 13: AND/OR-tree conflict-detection optimization."""

import pytest
from conftest import write_result

from repro.machines import get_machine
from repro.scheduler import schedule_workload


def test_table13_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.table13())
    rows = {row[0]: row for row in suite.table13_rows()}
    # Complex machines improve; simple machines are unchanged.
    for name in ("SuperSPARC", "K5"):
        assert rows[name][2] < rows[name][1]
    for name in ("PA7100", "Pentium"):
        assert rows[name][2] == pytest.approx(rows[name][1])
    write_result(results_dir, "table13_andor_opt.txt", text)


@pytest.mark.parametrize("stage", [3, 4], ids=["before", "after"])
def test_table13_bench_k5_andor(
    benchmark, kernel_workloads, kernel_compiled, stage
):
    """Time K5 AND/OR scheduling before/after tree reordering."""
    machine = get_machine("K5")
    compiled = kernel_compiled("K5", "andor", stage, True)
    blocks = kernel_workloads("K5")
    result = benchmark(schedule_workload, machine, compiled, blocks)
    assert result.total_ops > 0
