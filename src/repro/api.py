"""``repro.api`` -- the stable, supported public surface.

Users were reaching into deep module paths (``repro.engine.registry``,
``repro.service.batch``, ``repro.transforms.pipeline``) for everyday
operations, which froze internal layout into downstream code.  This
facade is the supported contract instead: everything here is re-exported
from its canonical home, named in ``__all__``, and kept stable across
refactors -- import from ``repro.api`` and internal moves stop being
your problem::

    from repro import api

    machine = api.get_machine("SuperSPARC")
    compiled = api.compile_machine(machine)          # paper's LMDES form
    engine = api.get_engine("bitvector", machine)    # any backend
    run = api.schedule(machine, blocks)              # one workload
    result = api.schedule_batch(                     # the service path
        "SuperSPARC", blocks,
        api.BatchConfig(workers=4, retry=api.RetryPolicy(retries=2),
                        on_error="report"),
    )
    for failure in result.errors:                    # typed quarantine
        print(failure.block_index, failure.error_type)
    report = api.verify_schedule(machine, run)       # independent oracle
    assert report.ok, report.diagnostics

The error taxonomy is part of the surface: every exception the library
raises derives from :class:`ReproError`, service-layer failures from
:class:`ServiceError`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.engine.cache import DescriptionCache
from repro.engine.registry import create_engine, engine_names, get_engine_spec
from repro.errors import (
    CacheCorruptionError,
    ChunkTimeoutError,
    HmdesError,
    MdesError,
    ReproError,
    SchedulingError,
    ServiceError,
    VerificationError,
    WorkerCrashError,
)
from repro.engine.shared import SharedDescriptionSpec
from repro.hmdes import load_mdes
from repro.ir.block import BasicBlock
from repro.lowlevel.compiled import CompiledMdes, compile_mdes
from repro.lowlevel.packed import (
    PACKED_WORD_BUDGET,
    numpy_available,
    packing_eligible,
)
from repro.machines import MACHINE_NAMES, get_machine
from repro.exact import (
    ExactBlockResult,
    ExactBudget,
    ExactRunResult,
    schedule_workload_exact,
)
from repro.scheduler import BlockSchedule, RunResult, schedule_workload
from repro.service import (
    DEFAULT_BACKEND,
    BatchConfig,
    BatchResult,
    BlockFailure,
    RetryPolicy,
    TimeoutPolicy,
    schedule_batch,
)
from repro.obs.bench import run_suite as run_bench_suite
from repro.obs.perf import (
    BenchRecord,
    Comparison,
    compare_records,
    env_fingerprint,
    load_baseline,
    write_baseline,
)
from repro.obs.prof import flamegraph, hot_spans, self_seconds
from repro.transforms.pipeline import FINAL_STAGE, staged_mdes
from repro.verify import (
    Diagnostic,
    VerifyReport,
    exact_oracle_divergences,
    verify_schedule,
)
from repro.workloads import WorkloadConfig, generate_blocks


def _resolve_machine(machine: Union[str, object]):
    """Accept a registered machine name or a machine object."""
    if isinstance(machine, str):
        return get_machine(machine)
    return machine


def compile_machine(
    machine: Union[str, object],
    stage: int = FINAL_STAGE,
    rep: str = "andor",
    bitvector: bool = True,
) -> CompiledMdes:
    """Compile a machine to its low-level (LMDES) form.

    The paper's two-tier workflow in one call: build the high-level
    description, run the transformation pipeline through ``stage``, and
    compile to the representation the schedulers query.
    """
    machine = _resolve_machine(machine)
    if rep not in ("or", "andor"):
        raise ValueError(f"rep must be 'or' or 'andor': {rep!r}")
    base = machine.build_or() if rep == "or" else machine.build_andor()
    return compile_mdes(staged_mdes(base, stage), bitvector=bitvector)


def get_engine(
    backend: str,
    machine: Union[str, object],
    stage: int = FINAL_STAGE,
    cache: Optional[DescriptionCache] = None,
):
    """Instantiate a registered query-engine backend for a machine.

    Accepts a machine name or object; otherwise identical to the
    registry's ``create_engine``.
    """
    return create_engine(
        backend, _resolve_machine(machine), stage=stage, cache=cache
    )


def schedule(
    machine: Union[str, object],
    blocks: Sequence[BasicBlock],
    backend: str = DEFAULT_BACKEND,
    stage: int = FINAL_STAGE,
    direction: str = "forward",
    keep_schedules: bool = True,
) -> Union[RunResult, ExactRunResult]:
    """Schedule one workload in-process and return the run statistics.

    The single-request counterpart of :func:`schedule_batch`: one
    engine, one pass over ``blocks``, the paper's ``CheckStats``
    attached to the result.  Backends registered with
    ``scheduler="exact"`` dispatch to :func:`schedule_exact` and return
    an :class:`ExactRunResult` (forward direction only).
    """
    machine = _resolve_machine(machine)
    if get_engine_spec(backend).scheduler == "exact":
        if direction != "forward":
            raise ValueError(
                "exact backends schedule forward only; "
                f"direction {direction!r} is not supported"
            )
        return schedule_exact(machine, blocks, backend=backend, stage=stage)
    engine = create_engine(backend, machine, stage=stage)
    return schedule_workload(
        machine, None, blocks,
        keep_schedules=keep_schedules, direction=direction, engine=engine,
    )


def schedule_exact(
    machine: Union[str, object],
    blocks: Sequence[BasicBlock],
    backend: str = "exact",
    stage: int = FINAL_STAGE,
    budget: Optional[ExactBudget] = None,
    max_block_ops: Optional[int] = None,
) -> ExactRunResult:
    """Schedule one workload with the branch-and-bound exact scheduler.

    Returns an :class:`ExactRunResult` whose per-block entries carry
    the proven-optimal flag, the lower bound, the heuristic seed
    length, and the search-effort counters -- the data behind the
    optimality-gap benchmark (``benchmarks/bench_optimality.py``).
    """
    machine = _resolve_machine(machine)
    spec = get_engine_spec(backend)
    if spec.scheduler != "exact":
        raise ValueError(f"backend {backend!r} is not an exact scheduler")
    engine = create_engine(backend, machine, stage=stage)
    return schedule_workload_exact(
        machine, blocks, engine=engine,
        budget=budget, max_block_ops=max_block_ops,
    )


__all__ = [
    # Entry points
    "compile_machine",
    "get_engine",
    "schedule",
    "schedule_batch",
    "schedule_exact",
    "verify_schedule",
    # Machines and workloads
    "MACHINE_NAMES",
    "get_machine",
    "load_mdes",
    "WorkloadConfig",
    "generate_blocks",
    # Engines and compiled form
    "CompiledMdes",
    "DEFAULT_BACKEND",
    "FINAL_STAGE",
    "PACKED_WORD_BUDGET",
    "SharedDescriptionSpec",
    "engine_names",
    "numpy_available",
    "packing_eligible",
    # Service types
    "BatchConfig",
    "BatchResult",
    "BlockFailure",
    "RetryPolicy",
    "TimeoutPolicy",
    # Results
    "BlockSchedule",
    "RunResult",
    # Exact scheduling
    "ExactBlockResult",
    "ExactBudget",
    "ExactRunResult",
    # Verification
    "Diagnostic",
    "VerifyReport",
    "exact_oracle_divergences",
    # Continuous performance + profiling
    "BenchRecord",
    "Comparison",
    "run_bench_suite",
    "compare_records",
    "env_fingerprint",
    "load_baseline",
    "write_baseline",
    "flamegraph",
    "hot_spans",
    "self_seconds",
    # Error taxonomy
    "VerificationError",
    "ReproError",
    "MdesError",
    "HmdesError",
    "SchedulingError",
    "ServiceError",
    "ChunkTimeoutError",
    "WorkerCrashError",
    "CacheCorruptionError",
]
