"""Tests for the EXPERIMENTS.md report builder and paper data."""

import pytest

from repro.analysis import paperdata
from repro.analysis.paperdata import PaperValue
from repro.analysis.report import ReportBuilder, generate_report
from repro.machines import MACHINE_NAMES


class TestPaperData:
    def test_paper_value_str(self):
        assert str(PaperValue(3.99)) == "3.99"
        assert str(PaperValue(2504)) == "2504"
        assert str(PaperValue(1.95, approx=True)) == "~1.95"

    def test_table1_shares_sum_to_100(self):
        total = sum(
            value.value for value in
            paperdata.TABLE1_ATTEMPT_SHARES.values()
        )
        assert total == pytest.approx(100.0, abs=0.1)

    def test_table4_shares_sum_to_100(self):
        total = sum(
            value.value for value in
            paperdata.TABLE4_ATTEMPT_SHARES.values()
        )
        assert total == pytest.approx(100.0, abs=0.5)

    def test_every_machine_covered_in_every_table(self):
        for table in (
            paperdata.TABLE5, paperdata.TABLE6, paperdata.TABLE7,
            paperdata.TABLE9, paperdata.TABLE10, paperdata.TABLE11,
            paperdata.TABLE12, paperdata.TABLE13, paperdata.TABLE14,
            paperdata.TABLE15,
        ):
            assert set(MACHINE_NAMES) <= set(table)

    def test_aggregates_consistent_with_components(self):
        """Table 14's K5 numbers agree with Tables 6/9/11 chains."""
        assert (
            paperdata.TABLE14["K5"]["unopt_or"].value
            == paperdata.TABLE6["K5"]["or_bytes"].value
        )
        assert (
            paperdata.TABLE14["K5"]["opt_or"].value
            == paperdata.TABLE11["K5"]["or_after"].value
        )


class TestReportBuilder:
    @pytest.fixture(scope="class")
    def report_text(self):
        return generate_report(total_ops=800)

    def test_every_table_present(self, report_text):
        for number in (5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15):
            assert f"Table {number}" in report_text

    def test_breakdown_tables_present(self, report_text):
        for fragment in (
            "Table 1: SuperSPARC", "Table 2: PA7100",
            "Table 3: Pentium", "Table 4: K5",
        ):
            assert fragment in report_text

    def test_figures_section(self, report_text):
        assert "Figure 2" in report_text
        assert "Figures 1, 3, 4, 5, 6" in report_text

    def test_markdown_tables_well_formed(self, report_text):
        lines = report_text.splitlines()
        for position, line in enumerate(lines):
            if line.startswith("|---"):
                header = lines[position - 1]
                assert header.count("|") == line.count("|")

    def test_approx_markers_propagate(self, report_text):
        assert "~" in report_text  # hard-to-read scan values flagged
