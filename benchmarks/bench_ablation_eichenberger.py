"""Ablation: Eichenberger-Davidson reduction vs the paper's transforms.

E-D minimizes usages *per option* but not the number of option checks per
attempt (paper section 10).  This bench applies the greedy E-D reduction
to the flat descriptions and compares against the paper's pipeline.
"""

from conftest import write_result

from repro.transforms.pipeline import staged_mdes
from repro.analysis.reporting import format_table
from repro.eichenberger import reduce_mdes_options
from repro.lowlevel.compiled import compile_mdes
from repro.lowlevel.layout import mdes_size_bytes
from repro.machines import get_machine
from repro.scheduler import schedule_workload
from repro.workloads import WorkloadConfig, generate_blocks

#: K5's 2000+ flat options make the O(n^2) reduction slow; bench the rest.
MACHINES = ("PA7100", "Pentium", "SuperSPARC")


def test_ablation_eichenberger_regenerate(results_dir, benchmark):
    def build_rows():
        rows = []
        for name in MACHINES:
            machine = get_machine(name)
            blocks = generate_blocks(
                machine, WorkloadConfig(total_ops=4000)
            )
            flat = machine.build_or()
            reduced = reduce_mdes_options(flat)
            ours = staged_mdes(flat, 4)
            row = [name]
            for mdes in (flat, reduced, ours):
                compiled = compile_mdes(mdes, bitvector=True)
                result = schedule_workload(machine, compiled, blocks)
                row.extend(
                    [
                        mdes_size_bytes(compiled),
                        result.stats.checks_per_attempt,
                    ]
                )
            rows.append(tuple(row))
        return rows

    rows = benchmark(build_rows)
    text = format_table(
        (
            "MDES",
            "Flat Bytes", "Flat Chk/Att",
            "E-D Bytes", "E-D Chk/Att",
            "Ours Bytes", "Ours Chk/Att",
        ),
        rows,
        title=(
            "Ablation: Eichenberger-Davidson option reduction vs the "
            "paper's transformations (flat OR form, bit-vectors)"
        ),
    )
    write_result(results_dir, "ablation_eichenberger.txt", text)
    # E-D never increases size; the paper's pipeline must also win on
    # checks for the simple machines.
    for row in rows:
        assert row[3] <= row[1]


def test_ablation_bench_reduction(benchmark):
    """Time the greedy reduction on the SuperSPARC flat description."""
    mdes = get_machine("SuperSPARC").build_or()
    reduced = benchmark(reduce_mdes_options, mdes)
    assert reduced.name == "SuperSPARC"
