"""The scheduling service end to end, driven in-process.

Tentpole test of the server PR: every test runs the real ASGI app --
routing, wire decoding, admission, micro-batching, the warm shared
description cache, error mapping, metrics -- through
:class:`repro.server.testing.AsgiClient`, which speaks the same ASGI
exchange the socket host does.

The acceptance bar lives in ``TestConcurrency``: one warm server
serves 100+ mixed-machine concurrent requests bit-identical to
one-shot :func:`repro.api.schedule` runs, compiling each description
at most once (asserted from the cache counters), and sheds load with
429 + ``Retry-After`` when the bounded queue fills.
"""

import asyncio
import json

import pytest

from repro import api, obs
from repro.server import QueuePolicy, ServerConfig, create_app
from repro.server.testing import AsgiClient
from repro.workloads import WorkloadConfig, generate_blocks
from repro.workloads.trace import write_trace
from repro.machines import MACHINE_NAMES, get_machine


@pytest.fixture(autouse=True)
def _obs_isolation():
    """Startup calls ``obs.enable()``; restore the session's state."""
    was_enabled = obs.enabled()
    obs.reset()
    yield
    obs.reset()
    obs.enable() if was_enabled else obs.disable()


def run(coro):
    return asyncio.run(coro)


def payload(machine="Pentium", ops=120, seed=7, **extra):
    body = {"machine": machine, "workload": {"total_ops": ops, "seed": seed}}
    body.update(extra)
    return body


def serial_schedule(machine, ops, seed, **kwargs):
    """The one-shot facade run the server must match bit-for-bit."""
    return api.schedule(api.ScheduleRequest(
        machine=machine,
        workload=WorkloadConfig(total_ops=ops, seed=seed),
        **kwargs,
    ))


def make_app(**overrides):
    overrides.setdefault("window_seconds", 0.002)
    return create_app(ServerConfig(**overrides))


class TestIntrospection:
    def test_healthz_reports_a_live_gate_and_cache(self):
        async def scenario():
            async with AsgiClient(make_app()) as client:
                response = await client.get("/healthz")
                assert response.status == 200
                body = response.json()
                assert body["status"] == "ok"
                assert body["admission"]["inflight"] == 0
                assert body["admission"]["draining"] is False
                assert body["cache"]["entries"] == 0
                assert body["resilience"]["retries"] == 0
                assert body["pool"]["workers"] == 1
        run(scenario())

    def test_machines_and_engines_routes(self):
        async def scenario():
            async with AsgiClient(make_app()) as client:
                machines = (await client.get("/v1/machines")).json()
                assert machines["machines"] == list(MACHINE_NAMES)
                engines = (await client.get("/v1/engines")).json()
                names = {e["name"] for e in engines["engines"]}
                assert {"bitvector", "exact"} <= names
                exact = next(
                    e for e in engines["engines"] if e["name"] == "exact"
                )
                assert exact["scheduler"] == "exact"
        run(scenario())

    def test_unknown_route_404_and_wrong_method_405(self):
        async def scenario():
            async with AsgiClient(make_app()) as client:
                assert (await client.get("/nope")).status == 404
                response = await client.post("/healthz", {})
                assert response.status == 405
                assert (await client.get("/v1/schedule")).status == 405
        run(scenario())


class TestScheduleRoute:
    def test_happy_path_matches_the_one_shot_facade_run(self):
        serial = serial_schedule("Pentium", 200, 11)
        async def scenario():
            async with AsgiClient(make_app()) as client:
                response = await client.post(
                    "/v1/schedule", payload("Pentium", 200, 11)
                )
                assert response.status == 200
                return response.json()
        body = run(scenario())
        assert body["kind"] == "batch"
        assert body["machine"] == "Pentium"
        assert body["cycles"] == serial.cycles
        assert body["ops"] == serial.ops
        assert body["schedules"] == serial.to_dict()["schedules"]
        assert body["request_id"]
        assert body["batched"]["group_requests"] == 1

    def test_trace_body_is_accepted_and_checked(self):
        machine = get_machine("K5")
        blocks = generate_blocks(
            machine, WorkloadConfig(total_ops=80, seed=3)
        )
        trace = write_trace(blocks, machine_name="K5")
        async def scenario():
            async with AsgiClient(make_app()) as client:
                ok = await client.post(
                    "/v1/schedule", {"machine": "K5", "trace": trace}
                )
                mismatched = await client.post(
                    "/v1/schedule", {"machine": "Pentium", "trace": trace}
                )
                return ok, mismatched
        ok, mismatched = run(scenario())
        assert ok.status == 200
        assert ok.json()["ops"] == sum(len(b) for b in blocks)
        assert mismatched.status == 400
        assert "trace is for machine" in mismatched.json()["message"]

    def test_exact_backend_bypasses_the_batcher(self):
        serial = serial_schedule("Pentium", 40, 5, backend="exact")
        async def scenario():
            async with AsgiClient(make_app()) as client:
                response = await client.post(
                    "/v1/schedule", payload("Pentium", 40, 5, backend="exact")
                )
                health = (await client.get("/healthz")).json()
                return response, health
        response, health = run(scenario())
        assert response.status == 200
        body = response.json()
        assert body["kind"] == "exact"
        assert body["cycles"] == serial.cycles
        assert body["exact"]["optimal_blocks"] == \
            serial.exact["optimal_blocks"]
        assert body["schedules"] == serial.to_dict()["schedules"]
        # No micro-batch ran: the exact path goes straight to the pool.
        assert health["batcher"]["batches_total"] == 0

    def test_verify_flag_replays_through_the_oracle(self):
        async def scenario():
            async with AsgiClient(make_app()) as client:
                return (await client.post(
                    "/v1/schedule", payload("SuperSPARC", 120, 9, verify=True)
                )).json()
        body = run(scenario())
        assert body["verify"]["ok"] is True
        assert body["verify"]["blocks"] == body["blocks"]

    def test_include_schedules_false_slims_the_body(self):
        async def scenario():
            async with AsgiClient(make_app()) as client:
                return (await client.post(
                    "/v1/schedule",
                    payload("Pentium", 80, 2, include_schedules=False),
                )).json()
        body = run(scenario())
        assert "schedules" not in body
        assert body["cycles"] > 0

    def test_malformed_bodies_map_to_400(self):
        async def scenario():
            async with AsgiClient(make_app()) as client:
                empty = await client.post("/v1/schedule", b"")
                not_json = await client.post("/v1/schedule", b"{nope")
                unknown_field = await client.post(
                    "/v1/schedule", payload(bogus=1)
                )
                unknown_machine = await client.post(
                    "/v1/schedule", payload(machine="PDP11")
                )
                unknown_backend = await client.post(
                    "/v1/schedule", payload(backend="nand")
                )
                no_work = await client.post(
                    "/v1/schedule", {"machine": "Pentium"}
                )
                return [
                    empty, not_json, unknown_field, unknown_machine,
                    unknown_backend, no_work,
                ]
        responses = run(scenario())
        for response in responses:
            assert response.status == 400
            assert response.json()["error"] == "RequestError"


class TestBatchRoute:
    def test_dedicated_batch_run_with_config_overrides(self):
        async def scenario():
            async with AsgiClient(make_app()) as client:
                response = await client.post("/v1/schedule/batch", dict(
                    payload("K5", 160, 13),
                    config={"chunk_size": 16, "on_error": "report"},
                ))
                return response
        response = run(scenario())
        assert response.status == 200
        body = response.json()
        assert body["kind"] == "batch"
        assert body["resilience"]["retries"] == 0
        assert body["cache"]["memory_misses"] >= 1
        serial = serial_schedule("K5", 160, 13)
        assert body["cycles"] == serial.cycles
        assert body["schedules"] == serial.to_dict()["schedules"]

    def test_server_side_config_knobs_stay_server_side(self):
        async def scenario():
            async with AsgiClient(make_app()) as client:
                return await client.post("/v1/schedule/batch", dict(
                    payload("K5", 40, 1),
                    config={"cache_dir": "/tmp/evil"},
                ))
        response = run(scenario())
        assert response.status == 400
        assert "cache_dir" in response.json()["message"]


class TestBackpressure:
    def _slow(self, app, seconds):
        """Wrap the batcher's runner so each batch takes ``seconds``."""
        original = app.state.batcher._runner

        async def slow_runner(batch):
            await asyncio.sleep(seconds)
            return await original(batch)

        app.state.batcher._runner = slow_runner

    def test_client_quota_sheds_with_429_and_retry_after(self):
        app = make_app(
            queue=QueuePolicy(max_inflight=8, per_client_inflight=1),
            window_seconds=0.05,
        )
        async def scenario():
            async with AsgiClient(app) as client:
                self._slow(app, 0.2)
                first = asyncio.ensure_future(client.post(
                    "/v1/schedule", payload(client="tenant-a")
                ))
                await asyncio.sleep(0.02)
                shed = await client.post(
                    "/v1/schedule", payload(client="tenant-a")
                )
                other = await client.post(
                    "/v1/schedule", payload(client="tenant-b")
                )
                return await first, shed, other
        first, shed, other = run(scenario())
        assert first.status == 200
        assert shed.status == 429
        assert shed.json()["error"] == "QuotaExceededError"
        assert float(shed.headers["retry-after"]) > 0
        assert shed.json()["retry_after_seconds"] > 0
        # Another tenant still gets in: the quota is per client.
        assert other.status == 200

    def test_full_queue_sheds_with_429(self):
        app = make_app(
            queue=QueuePolicy(max_inflight=1, per_client_inflight=1),
            window_seconds=0.05,
        )
        async def scenario():
            async with AsgiClient(app) as client:
                self._slow(app, 0.2)
                first = asyncio.ensure_future(client.post(
                    "/v1/schedule", payload(client="a")
                ))
                await asyncio.sleep(0.02)
                shed = await client.post(
                    "/v1/schedule", payload(client="b")
                )
                return await first, shed
        first, shed = run(scenario())
        assert first.status == 200
        assert shed.status == 429
        assert shed.json()["error"] == "QueueFullError"

    def test_rejections_show_up_in_healthz(self):
        app = make_app(
            queue=QueuePolicy(max_inflight=1, per_client_inflight=1),
            window_seconds=0.05,
        )
        async def scenario():
            async with AsgiClient(app) as client:
                self._slow(app, 0.2)
                first = asyncio.ensure_future(client.post(
                    "/v1/schedule", payload(client="a")
                ))
                await asyncio.sleep(0.02)
                await client.post("/v1/schedule", payload(client="b"))
                health = (await client.get("/healthz")).json()
                await first
                return health
        health = run(scenario())
        assert health["admission"]["rejected_total"] == 1
        assert health["admission"]["admitted_total"] >= 1


class TestDeadlines:
    def test_deadline_maps_to_504_while_the_batch_survives(self):
        app = make_app(window_seconds=0.0)
        async def scenario():
            async with AsgiClient(app) as client:
                original = app.state.batcher._runner

                async def slow_runner(batch):
                    await asyncio.sleep(0.3)
                    return await original(batch)

                app.state.batcher._runner = slow_runner
                late = await client.post(
                    "/v1/schedule",
                    payload(deadline_seconds=0.02, client="hurried"),
                )
                # The shed rider must not wedge the gate: a fresh
                # request (no deadline) still completes.
                app.state.batcher._runner = original
                ok = await client.post("/v1/schedule", payload())
                health = (await client.get("/healthz")).json()
                return late, ok, health
        late, ok, health = run(scenario())
        assert late.status == 504
        assert late.json()["error"] == "DeadlineExceededError"
        assert ok.status == 200
        assert health["admission"]["inflight"] == 0

    def test_default_deadline_comes_from_server_config(self):
        app = make_app(window_seconds=0.0, default_deadline_seconds=0.02)
        async def scenario():
            async with AsgiClient(app) as client:
                original = app.state.batcher._runner

                async def slow_runner(batch):
                    await asyncio.sleep(0.3)
                    return await original(batch)

                app.state.batcher._runner = slow_runner
                return await client.post("/v1/schedule", payload())
        response = run(scenario())
        assert response.status == 504


class TestLifecycle:
    def test_draining_rejects_new_work_with_503(self):
        app = make_app()
        async def scenario():
            async with AsgiClient(app) as client:
                app.state.admission.draining = True
                health = await client.get("/healthz")
                shed = await client.post("/v1/schedule", payload())
                return health, shed
        health, shed = run(scenario())
        assert health.status == 503
        assert health.json()["status"] == "draining"
        assert shed.status == 503
        assert shed.json()["error"] == "ShuttingDownError"

    def test_shutdown_flushes_open_batch_windows(self):
        # A 30s window would hold the rider far past the test's
        # patience; graceful drain must flush it immediately.
        app = make_app(window_seconds=30.0)
        async def scenario():
            async with AsgiClient(app) as client:
                rider = asyncio.ensure_future(
                    client.post("/v1/schedule", payload())
                )
                await asyncio.sleep(0.05)
                assert not rider.done()
                return rider
        async def drive():
            loop = asyncio.get_running_loop()
            started = loop.time()
            rider = await scenario()  # __aexit__ ran the drain
            response = await rider
            return response, loop.time() - started
        response, elapsed = run(drive())
        assert response.status == 200
        assert elapsed < 10.0


class TestMetrics:
    def test_request_counters_and_spans_reach_the_registry(self):
        async def scenario():
            async with AsgiClient(make_app()) as client:
                await client.post("/v1/schedule", payload())
                await client.post("/v1/schedule", payload(machine="Nope"))
                await client.get("/healthz")
                metrics = await client.get("/metrics")
                return metrics
        metrics = run(scenario())
        assert metrics.status == 200
        assert "text/plain" in metrics.headers["content-type"]
        parsed = obs.parse_prometheus(metrics.text)
        samples = {
            (name, dict(labels).get("route"), dict(labels).get("status")):
                value
            for (name, labels), value in parsed["samples"].items()
        }
        assert samples[
            ("repro_server_requests_total", "/v1/schedule", "200")
        ] == 1.0
        assert samples[
            ("repro_server_requests_total", "/v1/schedule", "400")
        ] == 1.0
        assert parsed["types"]["repro_server_request_seconds"] == "histogram"
        assert samples[("repro_server_up", None, None)] == 1.0
        # The request landed a server:request span in the trace tree.
        roots = [s.name for s in obs.TRACER.roots]
        assert "server:request" in roots


class TestConcurrency:
    """The PR's acceptance bar, in one class."""

    REQUESTS = 104
    MACHINES = list(MACHINE_NAMES)

    def _mixed_payloads(self):
        bodies = []
        for index in range(self.REQUESTS):
            machine = self.MACHINES[index % len(self.MACHINES)]
            ops = 40 + 10 * (index % 3)
            seed = 100 + index % 5
            bodies.append((machine, ops, seed, payload(
                machine, ops, seed, client=f"tenant-{index % 13}",
            )))
        return bodies

    def test_100_concurrent_requests_are_bit_identical_to_serial(self):
        bodies = self._mixed_payloads()
        serial = {}
        for machine, ops, seed, _ in bodies:
            key = (machine, ops, seed)
            if key not in serial:
                serial[key] = serial_schedule(machine, ops, seed).to_dict()
        app = make_app(
            queue=QueuePolicy(max_inflight=256, per_client_inflight=64),
            window_seconds=0.005,
            prewarm=tuple(
                (name, "bitvector") for name in self.MACHINES
            ),
        )
        async def scenario():
            async with AsgiClient(app) as client:
                after_prewarm = (await client.get("/healthz")).json()
                responses = await asyncio.gather(*[
                    client.post("/v1/schedule", body)
                    for _, _, _, body in bodies
                ])
                health = (await client.get("/healthz")).json()
                return after_prewarm, responses, health
        after_prewarm, responses, health = run(scenario())

        # Prewarm compiled each machine's description exactly once (two
        # cache entries per machine: the staged mdes + its compiled
        # lmdes form)...
        assert after_prewarm["cache"]["entries"] == 2 * len(self.MACHINES)
        assert after_prewarm["cache"]["memory_misses"] \
            == 2 * len(self.MACHINES)
        # ...and the traffic never compiled again: not one new miss
        # across 100+ requests, every lookup a warm hit.
        assert health["cache"]["entries"] == after_prewarm["cache"]["entries"]
        assert health["cache"]["memory_misses"] \
            == after_prewarm["cache"]["memory_misses"]
        assert health["cache"]["memory_hits"] >= 1

        for (machine, ops, seed, _), response in zip(bodies, responses):
            assert response.status == 200, response.text
            body = response.json()
            expected = serial[(machine, ops, seed)]
            assert body["machine"] == machine
            assert body["cycles"] == expected["cycles"], (machine, ops, seed)
            assert body["ops"] == expected["ops"]
            assert body["schedules"] == expected["schedules"], \
                (machine, ops, seed)
            assert body["errors"] == []

        # Micro-batching actually coalesced: far fewer batch runs than
        # requests, and every request rode one.
        assert health["batcher"]["batched_requests_total"] == self.REQUESTS
        assert health["batcher"]["batches_total"] < self.REQUESTS
        # A clean run recovers from nothing.
        assert health["resilience"] == {
            "retries": 0, "timeouts": 0, "pool_restarts": 0,
            "degraded_runs": 0, "quarantined": 0,
        }
        assert health["admission"]["rejected_total"] == 0
        assert health["requests_total"] == self.REQUESTS

    def test_batched_and_solo_runs_agree_on_the_envelope_signature(self):
        """Riders split from one group carry their own block slices."""
        app = make_app(window_seconds=0.01)
        async def scenario():
            async with AsgiClient(app) as client:
                a, b = await asyncio.gather(
                    client.post("/v1/schedule", payload("PA7100", 60, 1)),
                    client.post("/v1/schedule", payload("PA7100", 90, 2)),
                )
                health = (await client.get("/healthz")).json()
                return a, b, health
        a, b, health = run(scenario())
        assert a.status == 200 and b.status == 200
        body_a, body_b = a.json(), b.json()
        # Same window, same batch: the group note says both rode it.
        if health["batcher"]["batches_total"] == 1:
            assert body_a["batched"]["group_requests"] == 2
            assert body_b["batched"]["offset"] > 0 or \
                body_a["batched"]["offset"] > 0
        for (machine, ops, seed), body in (
            (("PA7100", 60, 1), body_a), (("PA7100", 90, 2), body_b),
        ):
            expected = serial_schedule(machine, ops, seed).to_dict()
            assert body["cycles"] == expected["cycles"]
            assert body["schedules"] == expected["schedules"]


class TestWireModels:
    def test_decode_rejects_both_trace_and_workload(self):
        from repro.errors import RequestError
        from repro.server.models import decode_schedule_request

        with pytest.raises(RequestError, match="not both"):
            decode_schedule_request({
                "machine": "Pentium", "trace": ".machine Pentium",
                "workload": {"total_ops": 10},
            })

    def test_decode_normalizes_the_config_subset(self):
        from repro.server.models import decode_batch_request
        from repro.service.models import BatchConfig

        request, include = decode_batch_request(
            {
                "machine": "K5",
                "workload": {"total_ops": 30, "seed": 1},
                "config": {
                    "workers": 2, "retries": 1,
                    "chunk_timeout_seconds": 2.5,
                },
                "include_schedules": False,
            },
            base_config=BatchConfig(cache_dir="/srv/cache"),
        )
        assert include is False
        assert request.config.workers == 2
        assert request.config.retry.retries == 1
        assert request.config.timeout.chunk_seconds == 2.5
        # The server-side placement knob survives the overlay.
        assert request.config.cache_dir == "/srv/cache"

    def test_response_to_dict_round_trips_json(self):
        response = serial_schedule("Pentium", 50, 4)
        body = json.loads(json.dumps(response.to_dict()))
        assert body["cycles"] == response.cycles
        assert len(body["schedules"]) == response.blocks


class TestSynthFleetChurn:
    """Server load test: a fleet of distinct synth machines through
    ``/v1/schedule``.

    The server's warm cache is built for a handful of hand-written
    machines; a synth fleet deliberately overflows it.  The contract
    under churn: every response stays correct (200, ok, nonzero
    cycles), the cache grows only to its bound and starts evicting,
    and no resilience machinery ever fires -- eviction is a capacity
    event, not a fault.
    """

    FLEET = 64

    def test_64_distinct_synth_machines_churn_the_cache(self):
        from repro.machines.synth import fleet_names

        names = fleet_names("superscalar-narrow", 21, self.FLEET)
        app = make_app(
            queue=QueuePolicy(max_inflight=256, per_client_inflight=64),
        )

        async def scenario():
            async with AsgiClient(app) as client:
                before = (await client.get("/healthz")).json()
                responses = []
                # Waves of 8 concurrent requests, each wave all-new
                # machines: sustained compile pressure, not one burst.
                for start in range(0, len(names), 8):
                    wave = names[start:start + 8]
                    responses.extend(await asyncio.gather(*[
                        client.post(
                            "/v1/schedule", payload(name, 40, 17)
                        )
                        for name in wave
                    ]))
                health = (await client.get("/healthz")).json()
                return before, responses, health

        before, responses, health = run(scenario())

        assert before["cache"]["entries"] == 0
        for name, response in zip(names, responses):
            assert response.status == 200, response.text
            body = response.json()
            assert body["ok"], name
            assert body["machine"] == name
            assert body["cycles"] > 0
            assert body["errors"] == []

        cache = health["cache"]
        # Every distinct description compiled at least once...
        assert cache["memory_misses"] >= self.FLEET
        # ...the resident set respected the LRU bound (64 entries,
        # two per machine, 64 machines -> must have evicted)...
        assert cache["entries"] <= 64
        assert cache["evictions"] > 0
        # ...and churn produced zero resilience events.
        assert health["resilience"] == {
            "retries": 0, "timeouts": 0, "pool_restarts": 0,
            "degraded_runs": 0, "quarantined": 0,
        }
        assert health["status"] == "ok"
