"""The description-space sweep driver.

One sweep schedules a *fixed* workload shape across every variant of a
synthetic machine fleet (:mod:`repro.machines.synth`) -- hundreds to
thousands of distinct descriptions in one run, where the rest of the
repo exercises four.  Each variant flows through the production stack
unchanged: registry-name resolution, the writer -> parser -> translator
front end, the transform pipeline, a registered query-engine backend,
and the fault-tolerant batch driver -- all dispatched through one
:class:`~repro.service.submit.BatchSubmitter` holding the warm
process-wide :class:`~repro.engine.cache.DescriptionCache`, the same
compile-once-use-many object the server tier keeps open.

Per variant the sweep records the schedule digest and run totals, the
per-transform ``options_delta`` effect columns (the live Table 7/8/13
quantities, here measured per *machine* rather than at the paper's four
points), an optional independent-oracle verdict, and an optional
exact-scheduler gap sample.  Rows contain only deterministic data, so a
sweep at ``workers=N`` is bit-identical to the serial one; failures are
quarantined per variant and never poison the rest of the fleet.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.engine.cache import DescriptionCache
from repro.engine.diskcache import DiskDescriptionCache, machine_content_token
from repro.machines import get_machine
from repro.machines import synth
from repro.service.models import (
    DEFAULT_BACKEND,
    BatchConfig,
    BatchRequest,
)
from repro.service.submit import BatchSubmitter
from repro.sweep.report import SweepReport, VariantResult
from repro.transforms.pipeline import FINAL_STAGE, staged_mdes
from repro.verify.golden import schedule_digest
from repro.workloads import WorkloadConfig

#: Warm-cache bound for sweep runs: every variant visits the cache once
#: (an "mdes" and an "lmdes" entry each), so the sweep is an eviction
#: *churn* workload by design; the bound keeps memory flat at any fleet
#: size while the disk tier (``cache_dir``) persists across sweeps.
SWEEP_CACHE_SIZE = 256


@dataclass(frozen=True)
class SweepConfig:
    """One sweep's parameters.

    Attributes:
        family: Synth family preset the fleet is drawn from.
        count: Fleet size (variant indices ``0..count-1``).
        seed: Fleet seed; ``(family, seed, index)`` fully determines
            each variant.
        names: Explicit machine-name fleet overriding
            ``family/count/seed`` -- any registry-resolvable names,
            including hand-written machines, mixed fleets, or a
            poisoned name (which quarantines just that variant).
        ops: Workload size scheduled on every variant.
        workload_seed: Workload generator seed (fixed across the fleet
            so the instruction mix, not the workload, is the constant).
        backend: Registered query-engine backend.
        stage: Transformation stage 0..4.
        workers: Submitter threads running variants concurrently.
            Results are bit-identical at any value.
        verify: Replay every variant's schedules through the
            independent oracle.
        exact_sample: When > 0, run the exact scheduler on every
            ``exact_sample``-th variant (small pinned workload) and
            record the optimality gap.
        exact_ops: Exact-sample workload size.
        exact_node_budget: Exact-search node budget (node-only, so the
            sample stays deterministic).
        cache_dir: Disk tier for the warm description cache.
        chunk_size: Batch-driver chunk size per variant run.
    """

    family: str = "superscalar-wide"
    count: int = 100
    seed: int = 0
    names: Tuple[str, ...] = ()
    ops: int = 64
    workload_seed: int = 20161202
    backend: str = DEFAULT_BACKEND
    stage: int = FINAL_STAGE
    workers: int = 1
    verify: bool = True
    exact_sample: int = 0
    exact_ops: int = 24
    exact_node_budget: int = 50_000
    cache_dir: Optional[str] = None
    chunk_size: int = 32

    def validate(self) -> "SweepConfig":
        if not self.names:
            synth.get_family(self.family)
            if self.count < 1:
                raise ValueError(f"count must be >= 1: {self.count}")
        if self.ops < 1:
            raise ValueError(f"ops must be >= 1: {self.ops}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if not 0 <= self.stage <= FINAL_STAGE:
            raise ValueError(
                f"stage must be 0..{FINAL_STAGE}: {self.stage}"
            )
        if self.exact_sample < 0:
            raise ValueError(
                f"exact_sample must be >= 0: {self.exact_sample}"
            )
        return self

    def fleet(self) -> Tuple[str, ...]:
        """The machine names this sweep visits, in index order."""
        if self.names:
            return tuple(self.names)
        return synth.fleet_names(self.family, self.seed, self.count)


def transform_effects_for(
    machine, stage: int = FINAL_STAGE
) -> List[Dict[str, Any]]:
    """One variant's per-transform effect columns, deterministically.

    Runs the staged pipeline on the variant's description under a
    detached trace capture and flattens the resulting ``transform:*``
    spans -- the same entries :func:`repro.obs.transform_effects`
    reads from the live trace, minus the wall-clock ``seconds`` column
    (sweep rows must be bit-identical across worker counts).  Driving
    the pipeline directly (rather than scraping the schedule run's
    spans) keeps the columns present even when the compile itself was
    a warm cache hit.
    """
    base = machine.build_andor()
    # The tracer is a global opt-in; the effect columns must exist
    # regardless, so enable it for just this capture when it is off.
    was_enabled = obs.enabled()
    if not was_enabled:
        obs.enable()
    try:
        with obs.capture() as capture:
            staged_mdes(base, stage)
    finally:
        if not was_enabled:
            obs.disable()
    containers = ("transform:pipeline", "transform:staged")
    effects: List[Dict[str, Any]] = []

    def walk(span_dict: Dict[str, Any]) -> None:
        name = span_dict.get("name", "")
        if name.startswith("transform:") and name not in containers:
            entry = {"stage": name[len("transform:"):]}
            entry.update(span_dict.get("attrs", {}))
            effects.append(entry)
        for child in span_dict.get("children", ()):
            walk(child)

    for root in capture.spans:
        walk(root)
    return effects


def _exact_sample(
    machine, config: SweepConfig, cache: DescriptionCache
) -> Dict[str, Any]:
    """The exact-scheduler gap sample for one variant."""
    from repro.engine.registry import create_engine
    from repro.exact import ExactBudget, schedule_workload_exact
    from repro.workloads import generate_blocks

    engine = create_engine(
        "exact", machine, stage=config.stage, cache=cache
    )
    blocks = generate_blocks(machine, WorkloadConfig(
        total_ops=config.exact_ops, seed=config.workload_seed,
        block_size_range=(3, 6),
    ))
    run = schedule_workload_exact(
        machine, blocks, engine=engine,
        budget=ExactBudget(
            max_nodes=config.exact_node_budget, max_seconds=None
        ),
    )
    return {
        "blocks": len(run.results),
        "ops": run.total_ops,
        "cycles": run.total_cycles,
        "heuristic_cycles": run.heuristic_cycles,
        "gap_cycles": run.gap_cycles,
        "optimal_blocks": run.optimal_blocks,
        "nodes": run.nodes,
    }


def _run_variant(
    index: int,
    name: str,
    config: SweepConfig,
    submitter: BatchSubmitter,
) -> VariantResult:
    """One variant, fully isolated: any failure becomes a quarantined
    row instead of an exception."""
    try:
        machine = get_machine(name)
        request = BatchRequest(
            machine=name,
            workload=WorkloadConfig(
                total_ops=config.ops, seed=config.workload_seed,
            ),
            config=BatchConfig(
                backend=config.backend,
                stage=config.stage,
                workers=1,
                chunk_size=config.chunk_size,
                verify=config.verify,
                on_error="report",
            ),
        ).validate()
        with obs.span("sweep:variant", machine=name, index=index):
            result = submitter.run(request)
            effects = transform_effects_for(machine, config.stage)
            exact = None
            if config.exact_sample and index % config.exact_sample == 0:
                exact = _exact_sample(machine, config, submitter.cache)
        verify_ok = None
        diagnostics = 0
        if result.verify_report is not None:
            verify_ok = result.verify_report.ok
            diagnostics = len(result.verify_report.diagnostics)
        return VariantResult(
            index=index,
            name=name,
            ok=True,
            content=machine_content_token(machine),
            complexity=synth.describe_complexity(machine),
            digest=schedule_digest(result.signature()),
            blocks=len(result.schedules),
            ops=result.total_ops,
            cycles=result.total_cycles,
            attempts=result.stats.attempts,
            options_per_attempt=result.stats.options_per_attempt,
            checks_per_attempt=result.stats.checks_per_attempt,
            transforms=effects,
            verify_ok=verify_ok,
            verify_diagnostics=diagnostics,
            exact=exact,
        )
    except Exception as exc:  # noqa: BLE001 -- quarantine, never poison
        return VariantResult(
            index=index,
            name=name,
            ok=False,
            error_type=type(exc).__name__,
            error_message=str(exc)[:500],
        )


def run_sweep(
    config: SweepConfig,
    cache: Optional[DescriptionCache] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> SweepReport:
    """Sweep the fleet; returns the aggregated report.

    ``progress``, when given, is called as ``progress(done, total)``
    after every variant (any thread).  Observability is force-enabled
    for the duration (the per-variant transform-effect capture needs
    the tracer) and restored afterwards.
    """
    config.validate()
    names = config.fleet()
    was_enabled = obs.enabled()
    if not was_enabled:
        obs.enable()
    try:
        if cache is None:
            disk = (
                DiskDescriptionCache(config.cache_dir)
                if config.cache_dir else None
            )
            cache = DescriptionCache(
                maxsize=SWEEP_CACHE_SIZE, disk=disk, name="sweep"
            )
        before = cache.stats.copy()
        submitter = BatchSubmitter(
            max_workers=config.workers, cache=cache
        )
        done = 0
        lock = threading.Lock()

        def run_one(index: int, name: str) -> VariantResult:
            nonlocal done
            row = _run_variant(index, name, config, submitter)
            if progress is not None:
                with lock:
                    done += 1
                    progress(done, len(names))
            return row

        with obs.span(
            "sweep:run",
            family=config.family if not config.names else "custom",
            variants=len(names),
            workers=config.workers,
        ) as sweep_span:
            try:
                if config.workers == 1:
                    variants = [
                        run_one(i, name) for i, name in enumerate(names)
                    ]
                else:
                    with ThreadPoolExecutor(
                        max_workers=config.workers,
                        thread_name_prefix="repro-sweep",
                    ) as pool:
                        futures = [
                            pool.submit(run_one, i, name)
                            for i, name in enumerate(names)
                        ]
                        variants = [f.result() for f in futures]
            finally:
                submitter.close()
        delta = cache.stats.since(before)
        report = SweepReport(
            family=config.family if not config.names else "custom",
            count=len(names),
            seed=config.seed,
            ops=config.ops,
            workload_seed=config.workload_seed,
            backend=config.backend,
            stage=config.stage,
            workers=config.workers,
            variants=variants,
            cache={
                "memory_hits": delta.hits,
                "memory_misses": delta.misses,
                "evictions": delta.evictions,
                "disk_hits": delta.disk_hits,
                "disk_misses": delta.disk_misses,
                "disk_stores": delta.disk_stores,
                "entries": len(cache),
            },
            wall_seconds=(
                sweep_span.seconds if obs.enabled() else 0.0
            ),
        )
        obs.count(
            "repro_sweep_variants_total",
            len(report.variants),
            help="Machine variants visited by sweep runs.",
        )
        if report.quarantined:
            obs.count(
                "repro_sweep_quarantined_total",
                report.quarantined,
                help="Sweep variants quarantined by per-variant faults.",
            )
        return report
    finally:
        if not was_enabled:
            obs.disable()


__all__ = [
    "SWEEP_CACHE_SIZE",
    "SweepConfig",
    "run_sweep",
    "transform_effects_for",
]
