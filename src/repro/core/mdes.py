"""Whole machine descriptions.

An :class:`Mdes` bundles everything a compiler module needs from a machine
description: the declared resources, one :class:`OperationClass` per
distinct execution-constraint/latency bundle, and a map from concrete
opcodes to operation classes.

Transformations never mutate an :class:`Mdes`; they derive a new one (see
:mod:`repro.transforms`).  Object identity of constraint trees across
operation classes expresses sharing, exactly as in the paper's internal
representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.resource import ResourceTable
from repro.core.tables import AndOrTree, Constraint, OrTree
from repro.errors import MdesError


@dataclass(frozen=True)
class Bypass:
    """A forwarding path between two operation classes.

    Real machine descriptions model bypassing and forwarding effects
    alongside resource constraints (paper, footnote 1).  A bypass says a
    flow-dependent (producer class, consumer class) pair may issue at
    ``latency`` cycles' distance instead of the producer's normal
    destination latency -- and, when the shortcut narrows the consumer's
    resource alternatives, that the consumer must then use
    ``substitute_class``.  The SuperSPARC's cascaded IALU pairs are the
    canonical instance: distance 0, half the reservation table options.
    """

    latency: int
    substitute_class: str = ""


@dataclass(frozen=True)
class OperationClass:
    """A group of opcodes with identical execution constraints.

    Attributes:
        name: Class name, e.g. ``"ialu_2src"``.
        constraint: The class's resource constraint, in either
            representation.
        latency: Cycles from issue until a flow-dependent consumer may
            issue (the destination-operand latency).
        read_time: When register sources are read, relative to issue.
            Zero for most classes; negative for operands consumed during
            decode -- the SuperSPARC reads load/store address operands a
            cycle early, which is what causes its address generation
            interlocks (paper section 2).  A producer feeding such an
            operand is visible one cycle later: the effective flow
            latency is ``producer.latency - consumer.read_time``.
    """

    name: str
    constraint: Constraint
    latency: int = 1
    read_time: int = 0

    def option_count(self) -> int:
        """Number of reservation table options in flat (OR-tree) terms.

        This is the figure the paper's Tables 1-4 report: the number of
        distinct resource-usage combinations available to the operation.
        """
        if isinstance(self.constraint, AndOrTree):
            return self.constraint.option_product()
        return len(self.constraint)

    def with_constraint(self, constraint: Constraint) -> "OperationClass":
        """Return a copy of this class with a different constraint."""
        return replace(self, constraint=constraint)


@dataclass
class Mdes:
    """A complete machine description.

    Attributes:
        name: Machine name, e.g. ``"SuperSPARC"``.
        resources: The declared resource table.
        op_classes: Operation classes by name.
        opcode_map: Concrete opcode -> operation class name.
        unused_trees: Named trees declared by the description but not
            referenced by any operation class.  Real descriptions accrete
            such dead information as they evolve (section 5); dead-code
            removal deletes it.
    """

    name: str
    resources: ResourceTable
    op_classes: Dict[str, OperationClass] = field(default_factory=dict)
    opcode_map: Dict[str, str] = field(default_factory=dict)
    unused_trees: Dict[str, Constraint] = field(default_factory=dict)
    #: Forwarding paths: (producer class, consumer class) -> Bypass.
    bypasses: Dict[Tuple[str, str], "Bypass"] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def op_class(self, class_name: str) -> OperationClass:
        """Return the operation class called ``class_name``."""
        try:
            return self.op_classes[class_name]
        except KeyError:
            raise MdesError(
                f"{self.name}: unknown operation class {class_name!r}"
            ) from None

    def class_for_opcode(self, opcode: str) -> OperationClass:
        """Return the operation class an opcode maps to."""
        try:
            class_name = self.opcode_map[opcode]
        except KeyError:
            raise MdesError(
                f"{self.name}: opcode {opcode!r} has no operation class"
            ) from None
        return self.op_class(class_name)

    def constraint_for_opcode(self, opcode: str) -> Constraint:
        """Return the execution constraint for an opcode."""
        return self.class_for_opcode(opcode).constraint

    def latency_for_opcode(self, opcode: str) -> int:
        """Return the destination latency for an opcode."""
        return self.class_for_opcode(opcode).latency

    def bypass_for(
        self, producer_class: str, consumer_class: str
    ) -> Optional["Bypass"]:
        """The forwarding path between two classes, if one exists."""
        return self.bypasses.get((producer_class, consumer_class))

    def flow_latency(
        self, producer_class: str, consumer_class: str
    ) -> int:
        """Effective flow-dependence latency between two classes.

        The producer's destination latency, seen earlier or later by the
        consumer's operand read time (never below zero).
        """
        producer = self.op_class(producer_class)
        consumer = self.op_class(consumer_class)
        return max(0, producer.latency - consumer.read_time)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def constraints(self) -> List[Constraint]:
        """Distinct (by identity) constraints across all operation classes."""
        seen: Dict[int, Constraint] = {}
        for op_class in self.op_classes.values():
            seen.setdefault(id(op_class.constraint), op_class.constraint)
        return list(seen.values())

    def or_trees(self) -> List[OrTree]:
        """Distinct (by identity) OR-trees reachable from any constraint."""
        seen: Dict[int, OrTree] = {}
        for constraint in self.constraints():
            if isinstance(constraint, AndOrTree):
                for tree in constraint.or_trees:
                    seen.setdefault(id(tree), tree)
            else:
                seen.setdefault(id(constraint), constraint)
        return list(seen.values())

    def tree_count(self) -> int:
        """Number of distinct top-level constraint trees (Table 6 column)."""
        return len(self.constraints())

    def stored_option_count(self) -> int:
        """Reservation table options actually stored (Table 6 column).

        For an OR-tree this is its option count; for an AND/OR-tree it is
        the sum over sub-OR-trees, which is what makes the representation
        compact.  Shared trees are counted once.
        """
        total = 0
        for tree in self.or_trees():
            total += len(tree)
        return total

    def or_tree_sharers(self) -> Dict[int, int]:
        """Map ``id(or_tree)`` -> number of AND/OR-trees sharing it.

        Used by the section 8 sorting heuristic: heavy sharing signals a
        heavily used resource group.
        """
        counts: Dict[int, int] = {}
        for constraint in self.constraints():
            if isinstance(constraint, AndOrTree):
                for tree in constraint.or_trees:
                    counts[id(tree)] = counts.get(id(tree), 0) + 1
            else:
                counts[id(constraint)] = counts.get(id(constraint), 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------

    def map_constraints(
        self, rewrite: Callable[[Constraint], Constraint]
    ) -> "Mdes":
        """Return a new Mdes with every constraint passed through ``rewrite``.

        ``rewrite`` is called once per distinct constraint object, so
        sharing between operation classes is preserved in the result.
        """
        cache: Dict[int, Constraint] = {}

        def rewrite_cached(constraint: Constraint) -> Constraint:
            key = id(constraint)
            if key not in cache:
                cache[key] = rewrite(constraint)
            return cache[key]

        new_classes = {
            class_name: op_class.with_constraint(
                rewrite_cached(op_class.constraint)
            )
            for class_name, op_class in self.op_classes.items()
        }
        new_unused = {
            tree_name: rewrite_cached(tree)
            for tree_name, tree in self.unused_trees.items()
        }
        return Mdes(
            name=self.name,
            resources=self.resources,
            op_classes=new_classes,
            opcode_map=dict(self.opcode_map),
            unused_trees=new_unused,
            bypasses=dict(self.bypasses),
        )

    def expanded(self) -> "Mdes":
        """Return the flat OR-tree form of this description (section 4)."""
        from repro.core.expand import as_or_tree

        flattened = self.map_constraints(as_or_tree)
        return flattened

    def validate(self) -> None:
        """Check internal consistency; raises :class:`MdesError` on faults."""
        for class_name in self.opcode_map.values():
            if class_name not in self.op_classes:
                raise MdesError(
                    f"{self.name}: opcode map references missing class "
                    f"{class_name!r}"
                )
        for op_class in self.op_classes.values():
            if isinstance(op_class.constraint, AndOrTree):
                op_class.constraint.validate_disjoint()
            if op_class.latency < 0:
                raise MdesError(
                    f"{self.name}: class {op_class.name!r} has negative "
                    "latency"
                )
        for (producer, consumer), bypass in self.bypasses.items():
            for class_name in (producer, consumer):
                if class_name not in self.op_classes:
                    raise MdesError(
                        f"{self.name}: bypass references unknown class "
                        f"{class_name!r}"
                    )
            if bypass.latency < 0:
                raise MdesError(
                    f"{self.name}: bypass {producer}->{consumer} has "
                    "negative latency"
                )
            if (
                bypass.substitute_class
                and bypass.substitute_class not in self.op_classes
            ):
                raise MdesError(
                    f"{self.name}: bypass {producer}->{consumer} "
                    f"substitutes unknown class "
                    f"{bypass.substitute_class!r}"
                )
            if bypass.latency >= self.flow_latency(producer, consumer):
                raise MdesError(
                    f"{self.name}: bypass {producer}->{consumer} is not "
                    "a shortcut (latency not below the normal flow "
                    "latency)"
                )

    def __repr__(self) -> str:
        return (
            f"Mdes({self.name!r}, {len(self.op_classes)} classes, "
            f"{len(self.opcode_map)} opcodes, {len(self.resources)} "
            "resources)"
        )
