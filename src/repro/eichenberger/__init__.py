"""Eichenberger-Davidson reduced reservation tables (paper section 10).

Eichenberger and Davidson (PLDI 1996) compute, for each reservation table
option, an equivalent option with a minimum number of resource usages --
minimizing per-option memory and checks, though not the number of
*options* checked per attempt (which is what the paper's AND/OR-trees
attack).  This subpackage implements a greedy variant of their reduction
as a comparison baseline.
"""

from repro.eichenberger.reduce import reduce_mdes_options, reduce_options

__all__ = ["reduce_mdes_options", "reduce_options"]
