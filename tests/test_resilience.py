"""Fault-injection differential matrix for the resilient batch service.

The resilience layer's contract (ISSUE: determinism under recovery) is
that a batch run surviving injected worker crashes, chunk hangs,
transient scheduling errors, and corrupt disk-cache entries produces
output **bit-for-bit identical** to a clean serial run: the same
schedule signatures, the same folded :class:`CheckStats`, and the same
merged span skeleton.  This suite asserts exactly that, plus the
surrounding machinery: deterministic backoff, the ``REPRO_FAULTS``
grammar, poisoned-block quarantine, and degradation to the serial path.

Every fault profile here is seeded by rule -- chunk index and attempt
numbers -- so the tests are reproducible, not merely likely to pass.
"""

import dataclasses
import os

import pytest

from repro import obs
from repro.engine import create_engine
from repro.errors import ServiceError, WorkerCrashError
from repro.scheduler import schedule_workload
from repro.service import (
    BatchConfig,
    RetryPolicy,
    TimeoutPolicy,
    parse_faults,
    schedule_batch,
)
from repro.service import faults
from repro.service.faults import FaultPlan, FaultRule
from repro.service.resilience import is_retryable

from tests.conftest import shared_workload

MACHINE = "K5"
CHUNK = 4
STAGE = 4

#: Worker count for the pool legs; CI sets REPRO_BATCH_WORKERS.
N_WORKERS = max(2, int(os.environ.get("REPRO_BATCH_WORKERS", "2")))


@pytest.fixture(autouse=True)
def _no_leaked_fault_plan():
    """No test leaves a process-wide fault plan behind."""
    faults.clear()
    yield
    faults.clear()


def workload(ops=160, seed=11, machine_name=MACHINE):
    return shared_workload(machine_name, ops, seed)


def clean_serial(machine_name, blocks, **knobs):
    """The reference outcome: one worker, no faults installed."""
    with faults.injected(FaultPlan()):
        return schedule_batch(
            machine_name, blocks,
            BatchConfig(workers=1, chunk_size=CHUNK, stage=STAGE, **knobs),
        )


def assert_same_outcome(result, reference):
    """The bit-for-bit part of the contract."""
    assert result.signature() == reference.signature()
    assert result.stats == reference.stats
    assert result.total_ops == reference.total_ops
    assert result.total_cycles == reference.total_cycles
    assert result.chunk_count == reference.chunk_count


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_defaults_validate(self):
        RetryPolicy().validate()
        TimeoutPolicy().validate()
        BatchConfig().validate()

    @pytest.mark.parametrize("bad", [
        dict(retries=-1),
        dict(backoff_base=-0.1),
        dict(backoff_max=-1.0),
        dict(backoff_factor=0.5),
        dict(jitter=1.5),
        dict(jitter=-0.1),
        dict(max_pool_restarts=-1),
    ])
    def test_rejects_bad_values(self, bad):
        with pytest.raises(ValueError):
            RetryPolicy(**bad).validate()

    def test_attempts_is_retries_plus_one(self):
        assert RetryPolicy().attempts == 1
        assert RetryPolicy(retries=3).attempts == 4

    def test_delay_is_deterministic(self):
        policy = RetryPolicy(retries=3, seed=7)
        again = RetryPolicy(retries=3, seed=7)
        for chunk in range(4):
            for attempt in range(1, 4):
                assert policy.delay(chunk, attempt) == \
                    again.delay(chunk, attempt)

    def test_delay_depends_on_seed_and_chunk(self):
        policy = RetryPolicy(seed=1)
        other_seed = RetryPolicy(seed=2)
        assert policy.delay(0, 1) != other_seed.delay(0, 1)
        assert policy.delay(0, 1) != policy.delay(1, 1)

    def test_delay_without_jitter_is_exact_exponential(self):
        policy = RetryPolicy(
            retries=4, backoff_base=0.1, backoff_factor=2.0,
            backoff_max=0.3, jitter=0.0,
        )
        delays = [policy.delay(0, attempt) for attempt in range(1, 5)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_bounded_above_base(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=1.0, jitter=0.5,
        )
        for chunk in range(8):
            delay = policy.delay(chunk, 1)
            assert 0.1 <= delay <= 0.1 * 1.5

    def test_timeout_policy_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            TimeoutPolicy(chunk_seconds=0).validate()
        with pytest.raises(ValueError):
            TimeoutPolicy(chunk_seconds=-1.0).validate()

    def test_batch_config_validates_on_error_and_policies(self):
        with pytest.raises(ValueError):
            BatchConfig(on_error="explode").validate()
        with pytest.raises(ValueError):
            BatchConfig(retry=RetryPolicy(retries=-1)).validate()
        with pytest.raises(ValueError):
            BatchConfig(timeout=TimeoutPolicy(chunk_seconds=0)).validate()

    def test_retryable_classification(self):
        from repro.errors import (
            CacheCorruptionError, ChunkTimeoutError, SchedulingError,
        )
        assert is_retryable(SchedulingError("transient"))
        assert is_retryable(WorkerCrashError("died"))
        assert is_retryable(ChunkTimeoutError("slow"))
        assert is_retryable(CacheCorruptionError("scribbled"))
        assert not is_retryable(KeyError("BOGUS"))
        assert not is_retryable(ValueError("bad config"))


# ----------------------------------------------------------------------
# The fault grammar
# ----------------------------------------------------------------------


class TestFaultSpec:
    SPEC = "seed=42;crash@1;hang@2:1.5;sched@0#0,1;corrupt@3#*"

    def test_parse_round_trips_through_spec(self):
        plan = parse_faults(self.SPEC)
        assert plan.seed == 42
        assert parse_faults(plan.spec()) == plan

    def test_parsed_rules(self):
        plan = parse_faults(self.SPEC)
        by_kind = {rule.kind: rule for rule in plan.rules}
        assert by_kind["crash"].attempts == (0,)
        assert by_kind["hang"].param == 1.5
        assert by_kind["sched"].attempts == (0, 1)
        assert by_kind["corrupt"].attempts == ()  # every attempt

    def test_attempt_matching(self):
        transient = FaultRule("sched", chunk=2)
        assert transient.matches(2, 0)
        assert not transient.matches(2, 1)  # retries run clean
        assert not transient.matches(3, 0)
        deterministic = FaultRule("sched", chunk=2, attempts=())
        assert deterministic.matches(2, 0) and deterministic.matches(2, 9)

    def test_rules_apply_in_kind_order(self):
        plan = parse_faults("crash@0#*;corrupt@0#*;sched@0#*")
        kinds = [rule.kind for rule in plan.rules_for(0, 0)]
        assert kinds == ["corrupt", "sched", "crash"]

    @pytest.mark.parametrize("bad", [
        "explode@0",          # unknown kind
        "sched",              # missing @chunk
        "sched@x",            # non-integer chunk
        "sched@-1",           # negative chunk
    ])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            parse_faults(bad)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert not parse_faults("seed=3")
        assert parse_faults("sched@0")

    def test_env_var_gates_the_plan(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "sched@1#0,1")
        plan = faults.current_plan()
        assert plan is not None and plan.rules[0].chunk == 1
        # A programmatically installed plan overrides the environment...
        with faults.injected(FaultPlan()):
            assert faults.current_plan() == FaultPlan()
        # ...and clearing it reverts to the environment.
        assert faults.current_plan() == plan
        monkeypatch.delenv(faults.ENV_VAR)
        assert faults.current_plan() is None

    def test_suppression_silences_every_rule(self):
        plan = parse_faults("sched@0#*")
        with faults.suppressed():
            faults.apply_chunk_faults(plan, 0, 0)  # must not raise


# ----------------------------------------------------------------------
# Serial-path recovery
# ----------------------------------------------------------------------


class TestSerialRecovery:
    def test_transient_fault_recovered_bit_for_bit(self):
        machine, blocks = workload()
        reference = clean_serial(MACHINE, blocks)
        with faults.injected(parse_faults("sched@0")):
            result = schedule_batch(
                MACHINE, blocks,
                BatchConfig(workers=1, chunk_size=CHUNK, stage=STAGE,
                            retry=RetryPolicy(retries=1, backoff_base=0.0)),
            )
        assert_same_outcome(result, reference)
        assert result.retries == 1
        assert result.errors == [] and not result.degraded

    def test_exhausted_budget_recovers_through_isolation(self):
        """A chunk that faults on *every* dispatch still comes back clean.

        Isolation probes with injection suppressed, finds no bad block,
        and re-runs the chunk through the normal path -- zero
        quarantines, identical output.
        """
        machine, blocks = workload()
        reference = clean_serial(MACHINE, blocks)
        with faults.injected(parse_faults("sched@0#*")):
            result = schedule_batch(
                MACHINE, blocks,
                BatchConfig(workers=1, chunk_size=CHUNK, stage=STAGE),
            )
        assert_same_outcome(result, reference)
        assert result.retries == 0 and result.quarantined == 0

    def test_serial_crash_fault_is_retryable(self):
        machine, blocks = workload()
        reference = clean_serial(MACHINE, blocks)
        with faults.injected(parse_faults("crash@1")):
            result = schedule_batch(
                MACHINE, blocks,
                BatchConfig(workers=1, chunk_size=CHUNK, stage=STAGE,
                            retry=RetryPolicy(retries=2, backoff_base=0.0)),
            )
        assert_same_outcome(result, reference)
        assert result.retries == 1

    def test_recovered_runs_are_reproducible(self):
        machine, blocks = workload()
        plan = parse_faults("sched@0;crash@1")
        outcomes = []
        for _ in range(2):
            with faults.injected(plan):
                outcomes.append(schedule_batch(
                    MACHINE, blocks,
                    BatchConfig(
                        workers=1, chunk_size=CHUNK, stage=STAGE,
                        retry=RetryPolicy(retries=1, backoff_base=0.0),
                    ),
                ))
        first, second = outcomes
        assert_same_outcome(first, second)
        assert first.retries == second.retries == 2


# ----------------------------------------------------------------------
# Poisoned-block quarantine
# ----------------------------------------------------------------------


def poison(blocks, block_index):
    """Give one block an opcode no machine knows (a KeyError at schedule)."""
    poisoned = list(blocks)
    victim = poisoned[block_index]
    bad_ops = list(victim.operations)
    bad_ops[0] = dataclasses.replace(bad_ops[0], opcode="BOGUS_OP")
    poisoned[block_index] = type(victim)(victim.label, bad_ops)
    return poisoned


class TestQuarantine:
    POISONED = 5  # second chunk under CHUNK=4

    def _poisoned_workload(self):
        machine, blocks = workload(seed=23)
        assert len(blocks) > self.POISONED
        return machine, poison(blocks, self.POISONED)

    def test_report_mode_quarantines_and_schedules_survivors(self):
        machine, blocks = self._poisoned_workload()
        result = schedule_batch(
            MACHINE, blocks,
            BatchConfig(workers=1, chunk_size=CHUNK, stage=STAGE,
                        on_error="report"),
        )
        assert result.quarantined == 1
        (failure,) = result.errors
        assert failure.block_index == self.POISONED
        assert failure.chunk_index == self.POISONED // CHUNK
        assert failure.error_type == "KeyError"
        assert "BOGUS_OP" in failure.message
        assert failure.machine == MACHINE
        assert failure.to_dict()["block_index"] == self.POISONED

        # Survivors come back bit-for-bit as if the bad block never
        # existed: per-block schedules are independent of chunking.
        survivors = [
            block for index, block in enumerate(blocks)
            if index != self.POISONED
        ]
        clean = schedule_workload(
            machine, None, survivors, keep_schedules=True,
            engine=create_engine("bitvector", machine, stage=STAGE),
        )
        assert result.signature() == tuple(
            s.signature() for s in clean.schedules
        )
        assert len(result.schedules) == len(blocks) - 1

    def test_raise_mode_raises_typed_service_error(self):
        machine, blocks = self._poisoned_workload()
        with pytest.raises(ServiceError) as excinfo:
            schedule_batch(
                MACHINE, blocks,
                BatchConfig(workers=1, chunk_size=CHUNK, stage=STAGE),
            )
        (failure,) = excinfo.value.failures
        assert failure.block_index == self.POISONED
        assert failure.error_type == "KeyError"

    def test_parallel_quarantine_matches_serial(self):
        machine, blocks = self._poisoned_workload()
        serial = schedule_batch(
            MACHINE, blocks,
            BatchConfig(workers=1, chunk_size=CHUNK, stage=STAGE,
                        on_error="report"),
        )
        parallel = schedule_batch(
            MACHINE, blocks,
            BatchConfig(workers=N_WORKERS, chunk_size=CHUNK, stage=STAGE,
                        on_error="report"),
        )
        assert_same_outcome(parallel, serial)
        assert parallel.errors == serial.errors


# ----------------------------------------------------------------------
# Pool-path recovery
# ----------------------------------------------------------------------


def span_skeleton(tracer):
    """The scheduling shape of a trace, recovery noise removed.

    Keeps ``service:batch`` / ``batch:chunk`` / ``schedule:list`` --
    the spans whose names, order, and attributes the determinism
    contract covers.  ``resilience:*`` spans (recovery is *allowed* to
    differ) and ``engine:create`` subtrees (a quarantined cache entry
    legitimately recompiles instead of disk-hitting) are filtered out.
    """
    keep = {"service:batch", "batch:chunk", "schedule:list"}
    varying = ("workers",)

    def shape(span):
        attrs = tuple(sorted(
            (key, value) for key, value in span.attrs.items()
            if key not in varying
        ))
        children = tuple(
            shape(child) for child in span.children
            if child.name in keep
        )
        return (span.name, attrs, children)

    return tuple(
        shape(root) for root in tracer.roots if root.name in keep
    )


class TestPoolRecovery:
    def test_worker_crash_recovers_bit_for_bit(self):
        machine, blocks = workload()
        reference = clean_serial(MACHINE, blocks)
        with faults.injected(parse_faults("crash@0")):
            result = schedule_batch(
                MACHINE, blocks,
                BatchConfig(workers=N_WORKERS, chunk_size=CHUNK,
                            stage=STAGE),
            )
        assert_same_outcome(result, reference)
        assert result.pool_restarts >= 1
        assert result.errors == [] and not result.degraded

    def test_acceptance_matrix_crash_hang_corruption(self, tmp_path):
        """The ISSUE acceptance criterion, verbatim.

        A seeded profile injects a worker crash, a hung chunk tripping
        the timeout budget, transient scheduling errors, and corrupt
        disk-cache entries -- and the recovered run's schedules, folded
        CheckStats, and merged span skeleton are bit-for-bit identical
        to a clean serial run over the same warmed cache.
        """
        machine, blocks = workload(ops=220, seed=31)
        assert len(blocks) >= 17  # at least five chunks of four
        knobs = dict(chunk_size=CHUNK, stage=STAGE,
                     cache_dir=str(tmp_path))

        # Warm the disk tier so the clean reference disk-hits.
        clean_serial(MACHINE, blocks, cache_dir=str(tmp_path))

        # corrupt@0#* -- chunk 0 scribbles the cache before its own
        #   (cold) load on every dispatch: a guaranteed quarantine.
        # sched@1#0,1 -- two transient failures, inside the budget.
        # hang@2#0,1:3.0 + a 1s chunk budget -- a guaranteed timeout.
        # crash@3 -- one real worker death (BrokenProcessPool).
        profile = parse_faults(
            "seed=42;corrupt@0#*;sched@1#0,1;hang@2#0,1:3.0;crash@3"
        )

        was_enabled = obs.enabled()
        obs.enable()
        try:
            obs.reset()
            with faults.injected(FaultPlan()):
                reference = schedule_batch(
                    MACHINE, blocks, BatchConfig(workers=1, **knobs)
                )
            reference_tree = span_skeleton(obs.TRACER)

            obs.reset()
            with faults.injected(profile):
                result = schedule_batch(
                    MACHINE, blocks,
                    BatchConfig(
                        workers=4,
                        retry=RetryPolicy(
                            retries=2, backoff_base=0.01,
                            max_pool_restarts=4, seed=42,
                        ),
                        timeout=TimeoutPolicy(chunk_seconds=1.0),
                        **knobs,
                    ),
                )
            recovered_tree = span_skeleton(obs.TRACER)
            registry = obs.REGISTRY
            assert registry.value(
                "repro_resilience_pool_restarts_total") >= 1
            assert registry.value("repro_resilience_timeouts_total") >= 1
        finally:
            if not was_enabled:
                obs.disable()
            obs.reset()

        # Bit-for-bit: schedules, folded stats, merged span skeleton.
        assert_same_outcome(result, reference)
        assert recovered_tree == reference_tree

        # The faults really happened and really were recovered.
        assert result.errors == [] and not result.degraded
        assert result.pool_restarts >= 2   # >=1 crash, >=1 timeout
        assert result.timeouts >= 1
        assert result.retries >= 1
        # The corrupt entry really went through the production
        # quarantine path.  The folded counter only sees quarantines
        # from *surviving* attempts (a discarded attempt's stats are
        # discarded with it, by design), but a quarantine always leaves
        # the renamed ``*.bad`` artifact behind -- so the union is
        # deterministic evidence even under pool-timing races.
        quarantine_evidence = (
            result.cache_stats.disk_quarantined
            + len(list(tmp_path.glob("*.bad")))
        )
        assert quarantine_evidence >= 1

    def test_repeated_pool_failure_degrades_to_serial(self):
        machine, blocks = workload()
        reference = clean_serial(MACHINE, blocks)
        with faults.injected(parse_faults("crash@0#*")):
            result = schedule_batch(
                MACHINE, blocks,
                BatchConfig(
                    workers=N_WORKERS, chunk_size=CHUNK, stage=STAGE,
                    retry=RetryPolicy(max_pool_restarts=1,
                                      backoff_base=0.0),
                ),
            )
        assert result.degraded
        assert result.pool_restarts == 2
        # The serial fallback still recovers chunk 0 (isolation probes
        # with injection suppressed) -- output stays bit-for-bit clean.
        assert_same_outcome(result, reference)
        assert result.errors == []


# ----------------------------------------------------------------------
# Recovery observability
# ----------------------------------------------------------------------


class TestRecoveryMetrics:
    def test_retry_and_quarantine_counters(self):
        machine, blocks = workload(seed=23)
        poisoned = poison(list(blocks), 1)
        was_enabled = obs.enabled()
        obs.enable()
        try:
            obs.reset()
            with faults.injected(parse_faults("sched@0")):
                schedule_batch(
                    MACHINE, poisoned,
                    BatchConfig(
                        workers=1, chunk_size=CHUNK, stage=STAGE,
                        on_error="report",
                        retry=RetryPolicy(retries=1, backoff_base=0.0),
                    ),
                )
            registry = obs.REGISTRY
            assert registry.value(
                "repro_resilience_retries_total",
                reason="SchedulingError",
            ) == 1
            assert registry.value(
                "repro_resilience_quarantined_blocks_total") == 1
            spans = [root.name for root in obs.TRACER.roots]
            assert "service:batch" in spans
        finally:
            if not was_enabled:
                obs.disable()
            obs.reset()
