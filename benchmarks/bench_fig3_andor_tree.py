"""Figure 3: OR-tree versus AND/OR-tree for the integer load."""

from conftest import write_result

from repro.lowlevel.compiled import compile_mdes
from repro.machines import get_machine


def test_fig3_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.fig3_representations())
    assert "AND over 3 OR-trees" in text
    write_result(results_dir, "fig3_representations.txt", text)


def test_fig3_bench_compile(benchmark):
    """Time low-level compilation of the whole SuperSPARC description."""
    mdes = get_machine("SuperSPARC").build_andor()
    compiled = benchmark(compile_mdes, mdes)
    assert "load" in compiled.constraints
