"""Complete option assignment for a fixed set of placements.

A query engine's ``try_reserve`` is *greedy*: it commits the first
available option of each OR-tree and never reconsiders.  That is the
behavior the paper's schedulers exhibit, but it is incomplete as a
feasibility test -- a cycle assignment can be resource-feasible even
though the greedy option choice paints itself into a corner.  The
independent :class:`~repro.verify.oracle.ScheduleOracle` defines
feasibility as "*some* option assignment exists", so an exact scheduler
must decide exactly that.

This module does: given every placed operation's compiled constraint and
issue cycle, a backtracking search assigns one option per OR-tree such
that all reservations are simultaneously disjoint.  The search is
complete up to a node budget; running out of budget is reported
distinctly from proven infeasibility so the caller can downgrade its
optimality claim instead of mispruning.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.lowlevel.bitvector import RUMap
from repro.lowlevel.compiled import CompiledAndOrTree, CompiledConstraint

#: One option alternative: absolute (cycle, mask) reservations.
Alternative = Tuple[Tuple[int, int], ...]

SAT = "sat"
UNSAT = "unsat"
BUDGET = "budget"


def constraint_slots(
    constraint: CompiledConstraint, issue_cycle: int
) -> List[List[Alternative]]:
    """One slot per OR-tree, alternatives shifted to absolute cycles."""
    if isinstance(constraint, CompiledAndOrTree):
        or_trees: Iterable = constraint.or_trees
    else:
        or_trees = (constraint,)
    slots: List[List[Alternative]] = []
    for or_tree in or_trees:
        slots.append([
            tuple(
                (issue_cycle + time, mask)
                for time, mask in option.reserve_mask_by_time
            )
            for option in or_tree.options
        ])
    return slots


def find_assignment(
    slots: List[List[Alternative]],
    max_nodes: int = 20_000,
) -> Tuple[str, Optional[List[Alternative]], int]:
    """Pick one alternative per slot with all reservations disjoint.

    Returns ``(status, chosen, nodes)`` where status is :data:`SAT`
    (``chosen`` holds one alternative per slot, in input order),
    :data:`UNSAT` (proven impossible), or :data:`BUDGET` (undecided
    within ``max_nodes`` extension attempts).
    """
    order = sorted(range(len(slots)), key=lambda i: len(slots[i]))
    ru = RUMap()
    chosen: List[Optional[Alternative]] = [None] * len(slots)
    nodes = 0

    def extend(depth: int) -> str:
        nonlocal nodes
        if depth == len(order):
            return SAT
        slot = slots[order[depth]]
        for alternative in slot:
            nodes += 1
            if nodes > max_nodes:
                return BUDGET
            free = all(ru.is_free(cycle, mask) for cycle, mask in alternative)
            if not free:
                continue
            for cycle, mask in alternative:
                ru.reserve(cycle, mask)
            chosen[order[depth]] = alternative
            status = extend(depth + 1)
            if status != UNSAT:
                return status
            for cycle, mask in alternative:
                ru.release(cycle, mask)
            chosen[order[depth]] = None
        return UNSAT

    status = extend(0)
    if status == SAT:
        return SAT, [alt for alt in chosen], nodes
    return status, None, nodes
