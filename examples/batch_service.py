#!/usr/bin/env python3
"""The batch-scheduling service through the stable ``repro.api`` facade.

Everything here imports from ``repro.api`` -- the supported public
surface -- rather than deep module paths.  The walk-through:

1. compile a machine to its low-level (LMDES) form with one call;
2. schedule a workload in-process (`api.schedule`);
3. shard the same workload across a process pool with retries, a
   per-chunk timeout, and typed error reporting (`api.schedule_batch`);
4. inject a seeded fault profile and show the recovered run is
   bit-for-bit identical to the clean one.

Run:  python examples/batch_service.py
"""

import tempfile

from repro import api
from repro.service import faults

MACHINE = "SuperSPARC"


def main():
    machine = api.get_machine(MACHINE)
    blocks = api.generate_blocks(
        machine, api.WorkloadConfig(total_ops=400, seed=7)
    )

    # 1. The paper's two-tier flow in one call: HMDES -> transforms ->
    #    compiled low-level representation.
    compiled = api.compile_machine(MACHINE)
    print(f"{MACHINE}: compiled LMDES with "
          f"{len(compiled.constraints)} opclass constraints")

    # 2. One in-process run (the single-request path).
    run = api.schedule(MACHINE, blocks, backend="bitvector")
    print(f"serial: {run.total_ops} ops in {run.total_cycles} cycles, "
          f"{run.stats.attempts} attempts")

    with tempfile.TemporaryDirectory() as cache_dir:
        config = api.BatchConfig(
            backend="bitvector",
            workers=2,
            chunk_size=8,
            cache_dir=cache_dir,
            retry=api.RetryPolicy(retries=2, seed=42),
            timeout=api.TimeoutPolicy(chunk_seconds=30.0),
            on_error="report",
        )

        # 3. The service path: chunked, pooled, disk-cached.
        clean = api.schedule_batch(MACHINE, blocks, config)
        print(f"batch:  {clean.total_ops} ops across "
              f"{clean.chunk_count} chunks, "
              f"{clean.cache_stats.disk_stores} artifact(s) published")
        for failure in clean.errors:  # typed quarantine records
            print(f"  quarantined block {failure.block_index}: "
                  f"{failure.error_type}")

        # 4. Same run under a seeded fault profile: chunk 0 suffers a
        #    transient scheduling error, chunk 1's worker crashes.
        #    (Equivalent to REPRO_FAULTS="sched@0;crash@1" in the env.)
        with faults.injected(faults.parse_faults("sched@0;crash@1")):
            recovered = api.schedule_batch(MACHINE, blocks, config)
        print(f"faulted: {recovered.retries} retry(ies), "
              f"{recovered.pool_restarts} pool restart(s), "
              f"{recovered.quarantined} quarantined")

        identical = (
            recovered.signature() == clean.signature()
            and recovered.stats == clean.stats
        )
        print(f"recovered output identical to clean run: {identical}")
        assert identical


if __name__ == "__main__":
    main()
