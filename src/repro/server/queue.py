"""Bounded admission control: quotas, backpressure, drain.

The server never queues unboundedly.  Every request passes through one
:class:`Admission` gate on the event-loop thread before any work is
enqueued; the gate's three verdicts map straight onto the error
taxonomy (and therefore onto HTTP statuses):

* draining        -> :class:`~repro.errors.ShuttingDownError` (503)
* client at quota -> :class:`~repro.errors.QuotaExceededError`  (429)
* queue full      -> :class:`~repro.errors.QueueFullError`      (429)

Both 429s carry a ``Retry-After`` hint estimated from an exponential
moving average of recent request service times -- a client that backs
off for one average service time usually finds a slot.

Everything here runs on the single event-loop thread, so the counters
need no locking; the submitter's worker threads never touch this
object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import QueueFullError, QuotaExceededError, ShuttingDownError

#: EMA weight for new service-time samples.
_EMA_ALPHA = 0.3


@dataclass(frozen=True)
class QueuePolicy:
    """Admission limits for one server process.

    Attributes:
        max_inflight: Requests admitted at once, queued or running --
            the bounded queue.  Everything past it is shed with a 429.
        per_client_inflight: One client's in-flight allowance; stops a
            single tenant from occupying the whole queue.
    """

    max_inflight: int = 64
    per_client_inflight: int = 8

    def validate(self) -> None:
        if self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1: {self.max_inflight}"
            )
        if self.per_client_inflight < 1:
            raise ValueError(
                "per_client_inflight must be >= 1: "
                f"{self.per_client_inflight}"
            )


class Admission:
    """The admission gate; one per server."""

    def __init__(self, policy: QueuePolicy) -> None:
        policy.validate()
        self.policy = policy
        self.inflight = 0
        self.per_client: Dict[str, int] = {}
        self.draining = False
        self.admitted_total = 0
        self.rejected_total = 0
        #: EMA of request service seconds (the Retry-After basis).
        self.avg_seconds = 0.05

    def retry_after(self) -> float:
        """Seconds a shed client should wait before retrying."""
        return max(0.05, round(self.avg_seconds, 3))

    def admit(self, client: str) -> None:
        """Claim a slot for ``client`` or raise the typed rejection."""
        if self.draining:
            self.rejected_total += 1
            raise ShuttingDownError(
                "server is draining; no new requests"
            )
        held = self.per_client.get(client, 0)
        if held >= self.policy.per_client_inflight:
            self.rejected_total += 1
            raise QuotaExceededError(
                f"client {client!r} already holds {held} in-flight "
                f"request(s) (quota {self.policy.per_client_inflight})",
                retry_after=self.retry_after(),
            )
        if self.inflight >= self.policy.max_inflight:
            self.rejected_total += 1
            raise QueueFullError(
                f"request queue is full ({self.inflight} in flight, "
                f"limit {self.policy.max_inflight})",
                retry_after=self.retry_after(),
            )
        self.inflight += 1
        self.per_client[client] = held + 1
        self.admitted_total += 1

    def release(self, client: str, seconds: float) -> None:
        """Return ``client``'s slot and feed the service-time EMA."""
        self.inflight = max(0, self.inflight - 1)
        held = self.per_client.get(client, 0)
        if held <= 1:
            self.per_client.pop(client, None)
        else:
            self.per_client[client] = held - 1
        if seconds >= 0:
            self.avg_seconds += _EMA_ALPHA * (seconds - self.avg_seconds)

    def idle(self) -> bool:
        """Whether nothing is admitted (drain completion test)."""
        return self.inflight == 0

    def summary(self) -> Dict[str, object]:
        """Gate state for ``/healthz``."""
        return {
            "inflight": self.inflight,
            "max_inflight": self.policy.max_inflight,
            "per_client_inflight": self.policy.per_client_inflight,
            "clients": dict(sorted(self.per_client.items())),
            "admitted_total": self.admitted_total,
            "rejected_total": self.rejected_total,
            "draining": self.draining,
            "retry_after_seconds": self.retry_after(),
        }


__all__ = ["Admission", "QueuePolicy"]
