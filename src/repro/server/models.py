"""Wire-level codecs: JSON bodies <-> the request vocabulary.

The network tier speaks exactly the same objects as the library
(:class:`~repro.service.models.ScheduleRequest` /
:class:`~repro.service.models.BatchRequest`); this module only decodes
an HTTP JSON body into them and rejects malformed input with
:class:`~repro.errors.RequestError` (which the app maps to a 400).

A request body carries its workload one of two ways:

* ``"trace"`` -- the canonical text trace form
  (:mod:`repro.workloads.trace`), the same bytes ``repro workload``
  emits and the CLI consumes; the trace's embedded machine name must
  agree with the request's ``"machine"`` when both are present.
* ``"workload"`` -- a generator spec (``{"total_ops": ..., "seed": ...}``),
  synthesized deterministically on the server; the cheap way to drive
  load tests and the differential harness.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.errors import RequestError
from repro.service.models import (
    BatchConfig,
    BatchRequest,
    ScheduleRequest,
)
from repro.service.resilience import RetryPolicy, TimeoutPolicy
from repro.transforms.pipeline import FINAL_STAGE
from repro.workloads import WorkloadConfig

#: Keys a ``"workload"`` generator spec may carry.
_WORKLOAD_KEYS = frozenset(
    ("total_ops", "seed", "recent_window", "live_in_registers")
)

#: Keys a schedule-request body may carry.
_SCHEDULE_KEYS = frozenset((
    "machine", "trace", "workload", "backend", "stage", "direction",
    "verify", "deadline_seconds", "client", "request_id",
    "include_schedules",
))

#: Keys a batch-request body may carry (schedule keys plus config).
_BATCH_KEYS = _SCHEDULE_KEYS | {"config"}

#: Keys the wire ``"config"`` object may set.  Deliberately narrower
#: than :class:`BatchConfig`: placement knobs (``cache_dir``) and the
#: fault-injection surface stay server-side.
_CONFIG_KEYS = frozenset((
    "workers", "chunk_size", "on_error", "shared_descriptions",
    "retries", "chunk_timeout_seconds",
))


def _reject_unknown(payload: Dict[str, Any], allowed, what: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise RequestError(
            f"unknown {what} field(s): {', '.join(unknown)}"
        )


def _expect(payload: Any, what: str) -> Dict[str, Any]:
    if not isinstance(payload, dict):
        raise RequestError(f"{what} must be a JSON object")
    return payload


def _decode_workload(payload: Any) -> WorkloadConfig:
    payload = _expect(payload, "workload spec")
    _reject_unknown(payload, _WORKLOAD_KEYS, "workload")
    try:
        return WorkloadConfig(**payload)
    except TypeError as exc:
        raise RequestError(f"bad workload spec: {exc}") from None


def _decode_blocks(
    payload: Dict[str, Any],
) -> Tuple[Optional[str], tuple, Optional[WorkloadConfig]]:
    """The (machine, blocks, workload) triple a body's workload implies."""
    trace_text = payload.get("trace")
    workload = payload.get("workload")
    if trace_text is not None and workload is not None:
        raise RequestError("give either a trace or a workload spec, not both")
    machine = payload.get("machine")
    if machine is not None and not isinstance(machine, str):
        raise RequestError("machine must be a string name")
    if trace_text is not None:
        if not isinstance(trace_text, str):
            raise RequestError("trace must be a string")
        from repro.workloads.trace import read_trace

        try:
            trace_machine, blocks = read_trace(trace_text)
        except Exception as exc:
            raise RequestError(f"bad trace: {exc}") from None
        if machine is not None and trace_machine and machine != trace_machine:
            raise RequestError(
                f"trace is for machine {trace_machine!r}, "
                f"request says {machine!r}"
            )
        return machine or trace_machine, tuple(blocks), None
    if workload is None:
        raise RequestError(
            "request has no work: give a trace or a workload spec"
        )
    return machine, (), _decode_workload(workload)


def _common_fields(payload: Dict[str, Any]) -> Dict[str, Any]:
    fields: Dict[str, Any] = {}
    deadline = payload.get("deadline_seconds")
    if deadline is not None:
        try:
            fields["deadline_seconds"] = float(deadline)
        except (TypeError, ValueError):
            raise RequestError(
                f"deadline_seconds must be a number: {deadline!r}"
            ) from None
    client = payload.get("client", "default")
    if not isinstance(client, str) or not client:
        raise RequestError("client must be a non-empty string")
    fields["client"] = client
    request_id = payload.get("request_id", "")
    if not isinstance(request_id, str):
        raise RequestError("request_id must be a string")
    fields["request_id"] = request_id
    return fields


def decode_schedule_request(
    payload: Any,
) -> Tuple[ScheduleRequest, bool]:
    """Decode a ``POST /v1/schedule`` body.

    Returns the validated request plus the wire-only
    ``include_schedules`` flag (whether placements go back in the
    response body).
    """
    payload = _expect(payload, "request body")
    _reject_unknown(payload, _SCHEDULE_KEYS, "request")
    machine, blocks, workload = _decode_blocks(payload)
    if machine is None:
        raise RequestError("request names no machine")
    try:
        request = ScheduleRequest(
            machine=machine,
            blocks=blocks,
            workload=workload,
            backend=payload.get("backend"),
            stage=int(payload.get("stage", FINAL_STAGE)),
            direction=payload.get("direction", "forward"),
            verify=bool(payload.get("verify", False)),
            **_common_fields(payload),
        )
    except (TypeError, ValueError) as exc:
        raise RequestError(f"bad request: {exc}") from None
    include = bool(payload.get("include_schedules", True))
    return request.validate(), include


def _decode_config(
    payload: Any, base: BatchConfig, backend: Optional[str],
    stage: Any, direction: Any, verify: Any,
) -> BatchConfig:
    from dataclasses import replace

    overrides: Dict[str, Any] = {}
    if backend is not None:
        overrides["backend"] = backend
    if stage is not None:
        overrides["stage"] = int(stage)
    if direction is not None:
        overrides["direction"] = direction
    if verify is not None:
        overrides["verify"] = bool(verify)
    payload = _expect(payload, "config") if payload is not None else {}
    _reject_unknown(payload, _CONFIG_KEYS, "config")
    for key in ("workers", "chunk_size"):
        if key in payload:
            try:
                overrides[key] = int(payload[key])
            except (TypeError, ValueError):
                raise RequestError(
                    f"{key} must be an integer: {payload[key]!r}"
                ) from None
    if "on_error" in payload:
        overrides["on_error"] = payload["on_error"]
    if "shared_descriptions" in payload:
        overrides["shared_descriptions"] = bool(
            payload["shared_descriptions"]
        )
    if "retries" in payload:
        try:
            overrides["retry"] = RetryPolicy(retries=int(payload["retries"]))
        except (TypeError, ValueError):
            raise RequestError(
                f"retries must be an integer: {payload['retries']!r}"
            ) from None
    if "chunk_timeout_seconds" in payload:
        try:
            overrides["timeout"] = TimeoutPolicy(
                chunk_seconds=float(payload["chunk_timeout_seconds"])
            )
        except (TypeError, ValueError):
            raise RequestError(
                "chunk_timeout_seconds must be a number: "
                f"{payload['chunk_timeout_seconds']!r}"
            ) from None
    try:
        return replace(base, **overrides)
    except (TypeError, ValueError) as exc:
        raise RequestError(f"bad config: {exc}") from None


def decode_batch_request(
    payload: Any, base_config: Optional[BatchConfig] = None,
) -> Tuple[BatchRequest, bool]:
    """Decode a ``POST /v1/schedule/batch`` body.

    ``base_config`` carries the server-side defaults (cache dir, pool
    shape); the body's ``"config"`` object overrides only the
    client-safe subset.
    """
    payload = _expect(payload, "request body")
    _reject_unknown(payload, _BATCH_KEYS, "request")
    machine, blocks, workload = _decode_blocks(payload)
    if machine is None:
        raise RequestError("request names no machine")
    config = _decode_config(
        payload.get("config"), base_config or BatchConfig(),
        payload.get("backend"), payload.get("stage"),
        payload.get("direction"), payload.get("verify"),
    )
    try:
        request = BatchRequest(
            machine=machine,
            blocks=blocks,
            workload=workload,
            config=config,
            **_common_fields(payload),
        )
    except (TypeError, ValueError) as exc:
        raise RequestError(f"bad request: {exc}") from None
    include = bool(payload.get("include_schedules", True))
    return request.validate(), include


__all__ = ["decode_batch_request", "decode_schedule_request"]
