"""Smoke tests: every example runs end to end (at reduced scale)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "Schedule length" in out
        assert "Scheduling attempts" in out

    def test_compare_representations(self, capsys):
        load_example("compare_representations").main(600)
        out = capsys.readouterr().out
        assert "SuperSPARC" in out
        assert "True" in out  # same-schedule verification

    def test_transform_walkthrough(self, capsys):
        load_example("transform_walkthrough").main("PA7100", 600)
        out = capsys.readouterr().out
        assert "exact same schedule" in out
        assert "and-or-tree-sort" in out

    def test_retarget_new_processor(self, capsys):
        load_example("retarget_new_processor").main()
        out = capsys.readouterr().out
        assert "dead trees" in out
        assert "bytes recovered" in out

    def test_software_pipelining(self, capsys):
        load_example("software_pipelining").main()
        out = capsys.readouterr().out
        assert "ResMII" in out
        assert "Kernel" in out

    def test_compiler_module_queries(self, capsys):
        load_example("compiler_module_queries").main()
        out = capsys.readouterr().out
        assert "issue bandwidth" in out
        assert "over-subscribes" in out
