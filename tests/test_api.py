"""The ``repro.api`` facade contract and the deprecation shims.

Satellite of the api_redesign PR: ``repro.api`` is the supported public
surface -- everything in its ``__all__`` must import, the convenience
entry points must agree bit-for-bit with the deep-path equivalents they
wrap, and the legacy deep-path names (``ModuloRUMap`` from the modulo
scheduler, ``staged_mdes``/``FINAL_STAGE`` from the experiments module)
must keep working behind a :class:`DeprecationWarning` that fires
exactly once per name.
"""

import importlib
import warnings

import pytest

from repro import api
from repro._compat import reset_deprecation_warnings
from repro.engine import create_engine
from repro.errors import (
    CacheCorruptionError,
    ChunkTimeoutError,
    ReproError,
    SchedulingError,
    ServiceError,
    WorkerCrashError,
)
from repro.machines import get_machine
from repro.scheduler import schedule_workload
from repro.workloads import WorkloadConfig, generate_blocks

MACHINE = "K5"
STAGE = 4


def workload(ops=120, seed=11):
    machine = get_machine(MACHINE)
    return machine, generate_blocks(
        machine, WorkloadConfig(total_ops=ops, seed=seed)
    )


class TestFacadeSurface:
    def test_every_name_in_all_is_importable(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_error_taxonomy_roots_at_repro_error(self):
        for error_type in (
            SchedulingError, ServiceError, ChunkTimeoutError,
            WorkerCrashError, CacheCorruptionError,
        ):
            assert issubclass(error_type, ReproError)
        for error_type in (ChunkTimeoutError, WorkerCrashError):
            assert issubclass(error_type, ServiceError)
        failure_records = ServiceError("boom", failures=["record"])
        assert failure_records.failures == ["record"]

    def test_compile_machine_matches_deep_path(self):
        from repro.lowlevel.compiled import compile_mdes
        from repro.lowlevel.serialize import save_lmdes
        from repro.transforms.pipeline import staged_mdes

        machine = get_machine(MACHINE)
        deep = compile_mdes(
            staged_mdes(machine.build_andor(), STAGE), bitvector=True
        )
        assert save_lmdes(api.compile_machine(MACHINE, stage=STAGE)) \
            == save_lmdes(deep)

    def test_compile_machine_rejects_unknown_rep(self):
        with pytest.raises(ValueError):
            api.compile_machine(MACHINE, rep="nand")

    def test_get_engine_accepts_name_or_object(self):
        machine = get_machine(MACHINE)
        by_name = api.get_engine("bitvector", MACHINE, stage=STAGE)
        by_object = api.get_engine("bitvector", machine, stage=STAGE)
        assert type(by_name) is type(by_object)
        assert by_name.name == "bitvector"
        assert set(api.engine_names()) >= {"bitvector", "automata"}

    def test_schedule_matches_deep_path(self):
        machine, blocks = workload()
        response = api.schedule(api.ScheduleRequest(
            machine=MACHINE, blocks=tuple(blocks),
            backend="bitvector", stage=STAGE,
        ))
        deep = schedule_workload(
            machine, None, blocks, keep_schedules=True,
            engine=create_engine("bitvector", machine, stage=STAGE),
        )
        assert isinstance(response, api.ScheduleResponse)
        assert [s.signature() for s in response.schedules] \
            == [s.signature() for s in deep.schedules]
        assert response.cycles == deep.total_cycles
        assert response.signature() \
            == tuple(s.signature() for s in deep.schedules)
        assert response.kind == "list" and response.ok
        assert response.request_id

    def test_schedule_response_serializes_to_json(self):
        import json

        _, blocks = workload(ops=60)
        response = api.schedule(api.ScheduleRequest(
            machine=MACHINE, blocks=tuple(blocks), stage=STAGE,
            verify=True,
        ))
        payload = json.loads(json.dumps(response.to_dict()))
        assert payload["machine"] == MACHINE
        assert payload["cycles"] == response.cycles
        assert payload["verify"]["ok"] is True
        assert len(payload["schedules"]) == response.blocks
        slim = response.to_dict(include_schedules=False)
        assert "schedules" not in slim

    def test_schedule_rejects_mixed_calling_styles(self):
        _, blocks = workload(ops=40)
        request = api.ScheduleRequest(machine=MACHINE, blocks=tuple(blocks))
        with pytest.raises(TypeError):
            api.schedule(request, backend="bitvector")
        with pytest.raises(TypeError):
            api.schedule_batch(
                api.BatchRequest(machine=MACHINE, blocks=tuple(blocks)),
                config=api.BatchConfig(),
            )

    def test_schedule_request_validation_is_typed(self):
        from repro.errors import RequestError

        _, blocks = workload(ops=40)
        with pytest.raises(RequestError):
            api.schedule(api.ScheduleRequest(
                machine="NoSuchMachine", blocks=tuple(blocks),
            ))
        with pytest.raises(RequestError):
            api.schedule(api.ScheduleRequest(
                machine=MACHINE, blocks=tuple(blocks), backend="nope",
            ))

    def test_schedule_batch_takes_batch_request(self):
        from repro.service import schedule_batch

        _, blocks = workload(ops=60)
        config = api.BatchConfig(workers=1, chunk_size=8, stage=STAGE)
        response = api.schedule_batch(api.BatchRequest(
            machine=MACHINE, blocks=tuple(blocks), config=config,
        ))
        assert isinstance(response, api.ScheduleResponse)
        assert response.kind == "batch"
        assert response.ops == sum(len(b) for b in blocks)
        assert response.errors == []
        assert response.resilience is not None
        assert response.cache is not None
        # The service-layer entry point keeps the bare-result
        # convention without any deprecation warning.
        bare = schedule_batch(get_machine(MACHINE), blocks, config)
        assert response.signature() == bare.signature()


class TestDeprecationShims:
    @pytest.fixture(autouse=True)
    def _fresh_warning_state(self):
        reset_deprecation_warnings()
        yield
        reset_deprecation_warnings()

    def _import_warns_once(self, module_name, attr, canonical_module):
        module = importlib.import_module(module_name)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = getattr(module, attr)
            second = getattr(module, attr)
        canonical = getattr(
            importlib.import_module(canonical_module), attr
        )
        assert first is canonical and second is canonical
        deprecations = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1, (
            f"{module_name}.{attr} warned {len(deprecations)} times"
        )
        message = str(deprecations[0].message)
        assert attr in message and canonical_module in message

    def test_modulo_rumap_shim_warns_exactly_once(self):
        self._import_warns_once(
            "repro.modulo.scheduler", "ModuloRUMap",
            "repro.lowlevel.bitvector",
        )

    def test_staged_mdes_shim_warns_exactly_once(self):
        self._import_warns_once(
            "repro.analysis.experiments", "staged_mdes",
            "repro.transforms.pipeline",
        )

    def test_final_stage_shim_warns_exactly_once(self):
        self._import_warns_once(
            "repro.analysis.experiments", "FINAL_STAGE",
            "repro.transforms.pipeline",
        )

    def test_canonical_imports_do_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            from repro.lowlevel.bitvector import ModuloRUMap  # noqa: F401
            from repro.modulo import ModuloRUMap as from_pkg  # noqa: F401
            from repro.transforms.pipeline import (  # noqa: F401
                FINAL_STAGE,
                staged_mdes,
            )
        assert caught == []

    def _call_warns_once(self, invoke):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = invoke()
            invoke()
        deprecations = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1, (
            f"legacy call warned {len(deprecations)} times"
        )
        return first, str(deprecations[0].message)

    def test_legacy_schedule_signature_warns_once(self):
        _, blocks = workload(ops=40)
        run, message = self._call_warns_once(
            lambda: api.schedule(MACHINE, blocks, backend="bitvector",
                                 stage=STAGE)
        )
        assert "ScheduleRequest" in message
        # Legacy calls return the bare result, not the envelope.
        assert not isinstance(run, api.ScheduleResponse)
        assert run.total_ops == sum(len(b) for b in blocks)

    def test_legacy_schedule_exact_signature_warns_once(self):
        _, blocks = workload(ops=30)
        run, message = self._call_warns_once(
            lambda: api.schedule_exact(MACHINE, blocks, stage=STAGE)
        )
        assert "ScheduleRequest" in message
        assert not isinstance(run, api.ScheduleResponse)
        assert run.total_cycles <= run.heuristic_cycles

    def test_legacy_schedule_batch_signature_warns_once(self):
        _, blocks = workload(ops=40)
        config = api.BatchConfig(workers=1, chunk_size=8, stage=STAGE)
        result, message = self._call_warns_once(
            lambda: api.schedule_batch(MACHINE, blocks, config)
        )
        assert "BatchRequest" in message
        assert not isinstance(result, api.ScheduleResponse)
        assert result.total_ops == sum(len(b) for b in blocks)

    def test_request_style_calls_do_not_warn(self):
        _, blocks = workload(ops=30)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("error", DeprecationWarning)
            api.schedule(api.ScheduleRequest(
                machine=MACHINE, blocks=tuple(blocks), stage=STAGE,
            ))
        assert caught == []

    def test_unknown_attribute_still_raises(self):
        import repro.analysis.experiments as experiments
        import repro.modulo.scheduler as scheduler

        with pytest.raises(AttributeError):
            scheduler.no_such_name
        with pytest.raises(AttributeError):
            experiments.no_such_name
