"""Reservation-table query engines (the paper's own representations).

One engine class serves three registry backends -- ``ortree``, ``andor``
and ``bitvector`` -- because the differences between them live entirely
in the compiled description handed to the constructor (flat versus
AND/OR constraint trees, scalar versus bit-vector check lists), not in
the check algorithm.  The Eichenberger-Davidson backend is the same
algorithm again over a description whose options were reduced first.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.base import QueryEngine, Reservation
from repro.lowlevel.bitvector import RUMap
from repro.lowlevel.checker import CheckStats, ConstraintChecker
from repro.lowlevel.compiled import CompiledMdes


class TableEngine(QueryEngine):
    """Reservation tables checked against a bit-vector RU map."""

    name = "table"

    def __init__(
        self,
        compiled: CompiledMdes,
        stats: Optional[CheckStats] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(compiled, stats, name)
        self._checker = ConstraintChecker(self.stats)

    def try_reserve(
        self, state: RUMap, class_name: str, cycle: int
    ) -> Optional[Reservation]:
        handle = self._checker.try_reserve(
            state,
            self.compiled.constraint_for_class(class_name),
            cycle,
            class_name,
        )
        if handle is None:
            return None
        return Reservation(state, handle)


class EichenbergerEngine(TableEngine):
    """Reduced reservation tables (Eichenberger & Davidson, PLDI 1996).

    Identical check algorithm; the registry compiles this backend's
    description through :func:`repro.eichenberger.reduce_mdes_options`
    first, so each option carries a minimum number of usages.
    """

    name = "eichenberger"
