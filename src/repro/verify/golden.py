"""The golden conformance corpus: machine x backend -> schedule digest.

Schedules in this library are deterministic: a fixed machine, a fixed
seeded workload, and a fixed (stage, backend) pair always produce the
same placement.  The golden corpus pins those placements down as SHA-256
digests checked into ``tests/golden/`` -- one JSON file per machine,
one entry per registered backend, each carrying the digest, the run
totals, and the oracle's verdict.  Any future transform or engine
change that shifts a schedule fails the corpus check loudly, and the
reviewer regenerates the files (``repro verify --golden tests/golden
--regen``) only after deciding the shift is intended.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.registry import create_engine, engine_names
from repro.machines import MACHINE_NAMES, get_machine
from repro.scheduler.list_scheduler import schedule_workload
from repro.transforms.pipeline import FINAL_STAGE
from repro.verify.oracle import ScheduleOracle
from repro.workloads.generator import WorkloadConfig, generate_blocks

#: Bump when the corpus file layout changes (not when schedules do).
#: Version 2 added the pinned exact-scheduler section.
CORPUS_VERSION = 2
#: The pinned workload: small enough to check in tier-1, large enough
#: that every machine exercises multi-option trees and cascading.
CORPUS_OPS = 160
CORPUS_SEED = 20161202
CORPUS_STAGE = FINAL_STAGE
#: The exact-scheduler section's own pinned workload: small blocks the
#: branch-and-bound search solves quickly, and a *node-only* budget --
#: a wall-clock budget would truncate the search at a machine-dependent
#: point and break bit-for-bit reproducibility.
EXACT_OPS = 48
EXACT_BLOCK_RANGE = (3, 8)
EXACT_NODE_BUDGET = 200_000


def corpus_path(directory, machine_name: str) -> Path:
    """The corpus file for one machine."""
    return Path(directory) / f"{machine_name.lower()}.json"


def schedule_digest(signature: tuple) -> str:
    """Stable digest of a run signature (tuples of ints and strings)."""
    return hashlib.sha256(repr(signature).encode("utf-8")).hexdigest()


def corpus_workload(machine_name: str):
    """The pinned (machine, blocks) pair the corpus schedules."""
    machine = get_machine(machine_name)
    blocks = generate_blocks(machine, WorkloadConfig(
        total_ops=CORPUS_OPS, seed=CORPUS_SEED,
    ))
    return machine, blocks


def exact_corpus_workload(machine_name: str):
    """The pinned small-block workload of the exact section."""
    machine = get_machine(machine_name)
    blocks = generate_blocks(machine, WorkloadConfig(
        total_ops=EXACT_OPS, seed=CORPUS_SEED,
        block_size_range=EXACT_BLOCK_RANGE,
    ))
    return machine, blocks


def compute_exact_entry(machine_name: str) -> Dict[str, object]:
    """Recompute one machine's pinned exact-scheduler results."""
    from repro.exact import ExactBudget, schedule_workload_exact

    machine, blocks = exact_corpus_workload(machine_name)
    engine = create_engine("exact", machine, stage=CORPUS_STAGE)
    run = schedule_workload_exact(
        machine, blocks, engine=engine,
        budget=ExactBudget(max_nodes=EXACT_NODE_BUDGET, max_seconds=None),
    )
    report = ScheduleOracle(machine).verify(run.schedules)
    return {
        "backend": "exact",
        "digest": schedule_digest(run.signature()),
        "blocks": len(run.results),
        "total_ops": run.total_ops,
        "total_cycles": run.total_cycles,
        "heuristic_cycles": run.heuristic_cycles,
        "optimal_blocks": run.optimal_blocks,
        "oracle_ok": report.ok,
        "oracle_diagnostics": len(report.diagnostics),
    }


def compute_document(
    machine_name: str, backends: Optional[Sequence[str]] = None
) -> Dict[str, object]:
    """Recompute one machine's corpus document from scratch."""
    from repro import obs

    if backends is None:
        backends = engine_names(scheduler="list")
    machine, blocks = corpus_workload(machine_name)
    oracle = ScheduleOracle(machine)
    entries: List[Dict[str, object]] = []
    with obs.span("verify:golden", machine=machine_name):
        for backend in backends:
            engine = create_engine(backend, machine, stage=CORPUS_STAGE)
            run = schedule_workload(
                machine, None, blocks, keep_schedules=True, engine=engine
            )
            report = oracle.verify(run.schedules)
            entries.append({
                "backend": backend,
                "digest": schedule_digest(run.signature()),
                "total_ops": run.total_ops,
                "total_cycles": run.total_cycles,
                "oracle_ok": report.ok,
                "oracle_diagnostics": len(report.diagnostics),
            })
        exact_entry = compute_exact_entry(machine_name)
    return {
        "version": CORPUS_VERSION,
        "machine": machine_name,
        "workload": {
            "total_ops": CORPUS_OPS,
            "seed": CORPUS_SEED,
            "stage": CORPUS_STAGE,
        },
        "exact_workload": {
            "total_ops": EXACT_OPS,
            "seed": CORPUS_SEED,
            "stage": CORPUS_STAGE,
            "block_size_range": list(EXACT_BLOCK_RANGE),
            "node_budget": EXACT_NODE_BUDGET,
        },
        "entries": entries,
        "exact": exact_entry,
    }


def write_corpus(
    directory,
    machines: Sequence[str] = MACHINE_NAMES,
    backends: Optional[Sequence[str]] = None,
) -> List[Path]:
    """(Re)generate the corpus files; returns the paths written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for machine_name in machines:
        document = compute_document(machine_name, backends)
        path = corpus_path(directory, machine_name)
        path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        written.append(path)
    return written


def check_corpus(
    directory,
    machines: Sequence[str] = MACHINE_NAMES,
    backends: Optional[Sequence[str]] = None,
) -> List[str]:
    """Compare current behavior against the stored corpus.

    Returns human-readable mismatch strings; an empty list means every
    machine x backend pair still produces its pinned schedule and
    oracle verdict.
    """
    from repro import obs

    mismatches: List[str] = []
    for machine_name in machines:
        path = corpus_path(directory, machine_name)
        if not path.exists():
            mismatches.append(f"{machine_name}: missing corpus file {path}")
            continue
        try:
            stored = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            mismatches.append(f"{machine_name}: unreadable corpus: {exc}")
            continue
        if stored.get("version") != CORPUS_VERSION:
            mismatches.append(
                f"{machine_name}: corpus version "
                f"{stored.get('version')} != {CORPUS_VERSION}"
            )
            continue
        current = compute_document(machine_name, backends)
        if stored.get("workload") != current["workload"]:
            mismatches.append(
                f"{machine_name}: pinned workload changed: "
                f"{stored.get('workload')} != {current['workload']}"
            )
            continue
        stored_entries = {
            entry.get("backend"): entry
            for entry in stored.get("entries", [])
        }
        for entry in current["entries"]:
            backend = entry["backend"]
            pinned = stored_entries.pop(backend, None)
            if pinned is None:
                mismatches.append(
                    f"{machine_name}/{backend}: no pinned entry "
                    "(regenerate the corpus)"
                )
                continue
            for key in (
                "digest", "total_ops", "total_cycles",
                "oracle_ok", "oracle_diagnostics",
            ):
                if pinned.get(key) != entry[key]:
                    mismatches.append(
                        f"{machine_name}/{backend}: {key} changed: "
                        f"pinned {pinned.get(key)!r}, got {entry[key]!r}"
                    )
        for backend in stored_entries:
            mismatches.append(
                f"{machine_name}/{backend}: pinned entry for an "
                "unregistered backend"
            )
        if stored.get("exact_workload") != current["exact_workload"]:
            mismatches.append(
                f"{machine_name}: pinned exact workload changed: "
                f"{stored.get('exact_workload')} != "
                f"{current['exact_workload']}"
            )
            continue
        pinned_exact = stored.get("exact")
        if pinned_exact is None:
            mismatches.append(
                f"{machine_name}/exact: no pinned exact section "
                "(regenerate the corpus)"
            )
            continue
        current_exact = current["exact"]
        for key in (
            "digest", "blocks", "total_ops", "total_cycles",
            "heuristic_cycles", "optimal_blocks",
            "oracle_ok", "oracle_diagnostics",
        ):
            if pinned_exact.get(key) != current_exact[key]:
                mismatches.append(
                    f"{machine_name}/exact: {key} changed: "
                    f"pinned {pinned_exact.get(key)!r}, "
                    f"got {current_exact[key]!r}"
                )
    obs.count(
        "repro_verify_golden_checks_total",
        help="Golden-corpus comparisons.",
        result="mismatch" if mismatches else "ok",
    )
    return mismatches


# ----------------------------------------------------------------------
# Synthetic mini-fleet section
# ----------------------------------------------------------------------
# A pinned 8-machine seeded fleet from repro.machines.synth, one corpus
# file for all of them.  It pins two things the per-machine files
# cannot: that seeded *generation* is bit-stable (the HMDES source
# digest) and that the full name -> writer -> parser -> translator ->
# schedule path stays put for machines nobody hand-wrote.

SYNTH_FLEET_FILE = "synth_fleet.json"
SYNTH_FLEET_VERSION = 1
SYNTH_FLEET_SEED = 7
SYNTH_FLEET_OPS = 48
SYNTH_FLEET_BACKEND = "bitvector"
#: (family, index) members: every preset family, double-sampled where
#: the generator has the most degrees of freedom.
SYNTH_FLEET_MEMBERS: Tuple[Tuple[str, int], ...] = (
    ("vliw-narrow", 0),
    ("vliw-narrow", 1),
    ("vliw-wide", 0),
    ("superscalar-narrow", 0),
    ("superscalar-wide", 0),
    ("superscalar-wide", 1),
    ("cydra-like", 0),
    ("fuzz-small", 0),
)


def synth_fleet_path(directory) -> Path:
    """The mini-fleet corpus file."""
    return Path(directory) / SYNTH_FLEET_FILE


def synth_fleet_names() -> Tuple[str, ...]:
    """The pinned fleet's registry names, in corpus order."""
    from repro.machines.synth import machine_name

    return tuple(
        machine_name(family, SYNTH_FLEET_SEED, index)
        for family, index in SYNTH_FLEET_MEMBERS
    )


def compute_synth_fleet() -> Dict[str, object]:
    """Recompute the mini-fleet document from scratch."""
    from repro import obs
    from repro.machines.synth import describe_complexity

    members: List[Dict[str, object]] = []
    with obs.span("verify:golden-synth", fleet=len(SYNTH_FLEET_MEMBERS)):
        for name in synth_fleet_names():
            machine = get_machine(name)
            blocks = generate_blocks(machine, WorkloadConfig(
                total_ops=SYNTH_FLEET_OPS, seed=CORPUS_SEED,
            ))
            engine = create_engine(
                SYNTH_FLEET_BACKEND, machine, stage=CORPUS_STAGE
            )
            run = schedule_workload(
                machine, None, blocks, keep_schedules=True, engine=engine
            )
            report = ScheduleOracle(machine).verify(run.schedules)
            members.append({
                "name": name,
                "source_digest": hashlib.sha256(
                    machine.hmdes_source.encode("utf-8")
                ).hexdigest(),
                "digest": schedule_digest(run.signature()),
                "total_ops": run.total_ops,
                "total_cycles": run.total_cycles,
                "oracle_ok": report.ok,
                "oracle_diagnostics": len(report.diagnostics),
                "complexity": describe_complexity(machine),
            })
    return {
        "version": SYNTH_FLEET_VERSION,
        "workload": {
            "total_ops": SYNTH_FLEET_OPS,
            "seed": CORPUS_SEED,
            "stage": CORPUS_STAGE,
            "backend": SYNTH_FLEET_BACKEND,
            "fleet_seed": SYNTH_FLEET_SEED,
        },
        "members": members,
    }


def write_synth_fleet(directory) -> Path:
    """(Re)generate the mini-fleet file; returns the path written."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = synth_fleet_path(directory)
    path.write_text(
        json.dumps(compute_synth_fleet(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def check_synth_fleet(directory) -> List[str]:
    """Compare current synth generation/scheduling against the pins."""
    path = synth_fleet_path(directory)
    if not path.exists():
        return [f"synth-fleet: missing corpus file {path}"]
    try:
        stored = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        return [f"synth-fleet: unreadable corpus: {exc}"]
    if stored.get("version") != SYNTH_FLEET_VERSION:
        return [
            f"synth-fleet: corpus version {stored.get('version')} != "
            f"{SYNTH_FLEET_VERSION}"
        ]
    current = compute_synth_fleet()
    mismatches: List[str] = []
    if stored.get("workload") != current["workload"]:
        return [
            "synth-fleet: pinned workload changed: "
            f"{stored.get('workload')} != {current['workload']}"
        ]
    stored_members = {
        member.get("name"): member
        for member in stored.get("members", [])
    }
    for member in current["members"]:
        name = member["name"]
        pinned = stored_members.pop(name, None)
        if pinned is None:
            mismatches.append(
                f"synth-fleet/{name}: no pinned member "
                "(regenerate the corpus)"
            )
            continue
        for key in (
            "source_digest", "digest", "total_ops", "total_cycles",
            "oracle_ok", "oracle_diagnostics", "complexity",
        ):
            if pinned.get(key) != member[key]:
                mismatches.append(
                    f"synth-fleet/{name}: {key} changed: "
                    f"pinned {pinned.get(key)!r}, got {member[key]!r}"
                )
    for name in stored_members:
        mismatches.append(
            f"synth-fleet/{name}: pinned member not in the fleet"
        )
    return mismatches
