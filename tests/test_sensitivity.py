"""Tests for the sensitivity sweeps (small scale)."""

import pytest

from repro.analysis.sensitivity import (
    SweepPoint,
    block_size_sweep,
    ilp_sweep,
    scale_sweep,
)


class TestSweepPoint:
    def test_reduction_pct(self):
        point = SweepPoint("x", 2.0, 10.0, 2.5)
        assert point.reduction_pct == 75.0

    def test_zero_guard(self):
        assert SweepPoint("x", 0.0, 0.0, 0.0).reduction_pct == 0.0


class TestSweeps:
    def test_ilp_sweep_monotone_pressure(self):
        points = ilp_sweep(
            "SuperSPARC", flow_probabilities=(0.2, 0.8), total_ops=1200
        )
        assert len(points) == 2
        assert points[0].attempts_per_op > points[1].attempts_per_op

    def test_block_size_sweep_shapes(self):
        points = block_size_sweep(
            "SuperSPARC", size_ranges=((2, 5), (8, 20)), total_ops=1200
        )
        assert points[0].label == "block=2-5"
        assert points[1].attempts_per_op > points[0].attempts_per_op

    def test_scale_sweep_is_intensive(self):
        points = scale_sweep("SuperSPARC", op_counts=(800, 3200))
        checks = [point.unopt_checks for point in points]
        assert abs(checks[0] - checks[1]) < 0.2 * max(checks)

    def test_reduction_always_large_for_supersparc(self):
        for point in ilp_sweep(
            "SuperSPARC", flow_probabilities=(0.5,), total_ops=1200
        ):
            assert point.reduction_pct > 70.0

    def test_variants_do_not_mutate_registry_machine(self):
        from repro.machines import get_machine

        machine = get_machine("SuperSPARC")
        before = machine.flow_probability
        ilp_sweep("SuperSPARC", flow_probabilities=(0.9,), total_ops=600)
        assert get_machine("SuperSPARC").flow_probability == before
