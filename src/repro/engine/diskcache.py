"""Persistent on-disk tier of the description cache.

The paper ships a pre-translated low-level description precisely so the
compiler loads it quickly instead of re-deriving it per invocation
(section 4, figure 1).  This module is that idea applied to our own
toolchain: compiled descriptions are written to a cache directory as
LMDES JSON artifacts (:mod:`repro.lowlevel.serialize`), keyed by a
*content hash* of the machine description plus every knob that affects
the compiled form -- representation, transformation stage, bit-vector
packing, Eichenberger reduction, and :data:`LMDES_VERSION`.  Warm
processes ``load_lmdes`` instead of re-running the HMDES parser and the
transformation pipeline, which is what makes a pool of short-lived
scheduling workers cheap to restart.

Robustness rules:

* **Content keys, not identities.**  ``id(machine)`` means nothing in
  another process; the key hashes the HMDES source text (plus the
  machine name and AND-wrap flag), so any process that builds the same
  description finds the same entry.  Ad-hoc machines without an
  ``hmdes_source`` get a process-local token and are never persisted.
* **Atomic writes.**  Entries are written to a temporary file in the
  cache directory and published with ``os.replace``, so concurrent
  writers race benignly: readers only ever observe a complete artifact.
* **Quarantine, never crash.**  A truncated, corrupted, or
  version-mismatched entry is renamed aside (``<entry>.bad``) and
  reported as a miss; the caller rebuilds and re-publishes it.
"""

from __future__ import annotations

import errno
import hashlib
import logging
import os
import re
import tempfile
import time
from pathlib import Path
from typing import Optional

from repro import obs
from repro.errors import CacheCorruptionError, MdesError
from repro.lowlevel.compiled import CompiledMdes
from repro.lowlevel.serialize import LMDES_VERSION, load_lmdes, save_lmdes

logger = logging.getLogger("repro.engine.diskcache")

#: Token prefix for machines whose description text could be hashed.
_HASHED = "sha256:"

#: OS errors that describe a *transient* read condition -- interrupted
#: IO, a busy or momentarily stale file (network filesystems), an IO
#: hiccup -- as opposed to "the entry is not there" (ENOENT) or a
#: configuration problem (EACCES), which retrying cannot fix.
_RETRYABLE_ERRNOS = frozenset(
    code for code in (
        errno.EAGAIN, errno.EBUSY, errno.EINTR, errno.EIO,
        errno.ETIMEDOUT, getattr(errno, "ESTALE", None),
        getattr(errno, "EDEADLK", None),
    )
    if code is not None
)

#: Bounded re-reads of one entry before it is reported as a miss.
READ_ATTEMPTS = 3

#: Pause between transient-read retries, in seconds.
_READ_RETRY_SLEEP = 0.01


def is_retryable_read_error(error: OSError) -> bool:
    """Whether an entry read failed transiently (re-read may succeed).

    ``FileNotFoundError`` is a plain miss and permission errors are
    configuration problems; everything else is judged by errno against
    the transient set, defaulting to *not* retryable so unknown
    conditions fail fast into the rebuild path.
    """
    if isinstance(error, FileNotFoundError):
        return False
    if isinstance(error, PermissionError):
        return False
    return error.errno in _RETRYABLE_ERRNOS


def machine_content_token(machine) -> str:
    """A stable content identity for a machine description.

    Hashes the HMDES source text plus the name and the AND-wrap flag
    (both change what ``build_or``/``build_andor`` produce).  Objects
    without an ``hmdes_source`` string -- ad-hoc test doubles -- get an
    identity-based token, so they never alias a real machine and are
    never written to disk.
    """
    source = getattr(machine, "hmdes_source", None)
    if not isinstance(source, str) or not source:
        return f"unhashed:{id(machine):x}"
    digest = hashlib.sha256()
    digest.update(
        f"{machine.name}|{bool(getattr(machine, 'wrap_or_trees', False))}|"
        .encode()
    )
    digest.update(source.encode())
    return _HASHED + digest.hexdigest()


def is_persistent_token(token: str) -> bool:
    """Whether a content token may key an on-disk entry."""
    return token.startswith(_HASHED)


def description_digest(
    token: str, rep: str, stage: int, bitvector: bool, reduce: bool
) -> str:
    """The on-disk cache key for one compiled-description configuration.

    Folds in :data:`LMDES_VERSION` so a format bump invalidates every
    old entry by construction (stale files are simply never looked up
    again, and a hand-edited version field is caught at load time).
    """
    payload = "|".join(
        (
            token,
            rep,
            str(stage),
            str(int(bitvector)),
            str(int(reduce)),
            f"lmdes-v{LMDES_VERSION}",
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class DiskDescriptionCache:
    """LMDES artifacts under one directory, one file per configuration.

    The cache is a dumb file store by design: all structure lives in the
    key digest and the LMDES format itself.  Pass a
    :class:`~repro.engine.cache.CacheStats` to :meth:`load` and
    :meth:`store` to have the disk-tier counters accounted.
    """

    def __init__(self, directory) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, machine_name: str, digest: str) -> Path:
        """Where one configuration's artifact lives."""
        safe = re.sub(r"[^A-Za-z0-9_.-]", "_", machine_name) or "mdes"
        return self.directory / f"{safe}-{digest[:32]}.lmdes.json"

    # ------------------------------------------------------------------
    # Entry IO
    # ------------------------------------------------------------------

    def _read_entry(self, path: Path) -> Optional[str]:
        """Read one entry with transient-error classification.

        ``None`` means a plain miss.  Reads failing with a retryable
        errno (:func:`is_retryable_read_error`) are re-attempted up to
        :data:`READ_ATTEMPTS` times before being reported as a miss;
        non-retryable errors give up immediately.
        """
        for attempt in range(READ_ATTEMPTS):
            try:
                return path.read_text()
            except FileNotFoundError:
                return None
            except OSError as exc:
                if not is_retryable_read_error(exc):
                    logger.warning(
                        "non-retryable read error on disk-cache entry "
                        "%s: %s", path, exc,
                    )
                    return None
                if attempt + 1 >= READ_ATTEMPTS:
                    logger.warning(
                        "giving up on disk-cache entry %s after %d "
                        "transient read error(s): %s",
                        path, READ_ATTEMPTS, exc,
                    )
                    return None
                obs.count(
                    "repro_diskcache_read_retries_total",
                    help="Transient disk-cache read errors retried.",
                )
                time.sleep(_READ_RETRY_SLEEP)
        return None

    def load(
        self, machine_name: str, digest: str, stats=None,
        on_corrupt: str = "quarantine",
    ) -> Optional[CompiledMdes]:
        """Load one entry; ``None`` (and a counted miss) when absent.

        A file that exists but does not load back -- truncated JSON, a
        foreign or future LMDES version, structurally broken tables --
        is quarantined and reported as a miss, so the caller falls back
        to a rebuild instead of crashing.  Transient read errors are
        retried first (:meth:`_read_entry`).  ``on_corrupt="raise"``
        still quarantines but then raises the typed
        :class:`~repro.errors.CacheCorruptionError` instead of
        returning ``None`` -- for callers that must distinguish "never
        cached" from "cached and rotten".
        """
        path = self.path_for(machine_name, digest)
        text = self._read_entry(path)
        if text is None:
            if stats is not None:
                stats.disk_misses += 1
            obs.count(
                "repro_diskcache_loads_total",
                help="Disk-tier description loads by outcome.",
                outcome="miss",
            )
            return None
        try:
            compiled = load_lmdes(text)
        except (MdesError, ValueError, KeyError, IndexError,
                TypeError) as exc:
            logger.warning(
                "quarantining corrupt disk-cache entry %s for machine "
                "%s: %s", path, machine_name, exc,
            )
            self._quarantine(path)
            if stats is not None:
                stats.disk_misses += 1
                stats.disk_quarantined += 1
            obs.count(
                "repro_diskcache_loads_total",
                help="Disk-tier description loads by outcome.",
                outcome="quarantined",
            )
            if on_corrupt == "raise":
                raise CacheCorruptionError(
                    f"disk-cache entry for {machine_name} "
                    f"({digest[:12]}...) was corrupt and has been "
                    f"quarantined"
                ) from exc
            return None
        if stats is not None:
            stats.disk_hits += 1
        obs.count(
            "repro_diskcache_loads_total",
            help="Disk-tier description loads by outcome.",
            outcome="hit",
        )
        return compiled

    def store(
        self, machine_name: str, digest: str, compiled: CompiledMdes,
        stats=None,
    ) -> Path:
        """Atomically publish one entry (last concurrent writer wins)."""
        path = self.path_for(machine_name, digest)
        text = save_lmdes(compiled)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.directory), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if stats is not None:
            stats.disk_stores += 1
        obs.count(
            "repro_diskcache_stores_total",
            help="Compiled descriptions published to the disk tier.",
        )
        return path

    # ------------------------------------------------------------------
    # Packed sidecars (zero-copy attach format)
    # ------------------------------------------------------------------

    def packed_path_for(self, machine_name: str, digest: str) -> Path:
        """Where one configuration's packed binary sidecar lives.

        Same content-hashed naming scheme as the LMDES artifact, with a
        ``.packed.bin`` suffix; the payload is the shared wire format of
        :mod:`repro.lowlevel.packed`, so a worker can map it read-only
        instead of parsing JSON.
        """
        safe = re.sub(r"[^A-Za-z0-9_.-]", "_", machine_name) or "mdes"
        return self.directory / f"{safe}-{digest[:32]}.packed.bin"

    def store_packed(
        self, machine_name: str, digest: str, blob: bytes
    ) -> Optional[Path]:
        """Atomically publish a packed sidecar (best effort)."""
        path = self.packed_path_for(machine_name, digest)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.directory), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return None
        return path

    def load_packed(self, machine_name: str, digest: str) -> Optional[bytes]:
        """Read a packed sidecar's bytes; ``None`` on miss or damage.

        A sidecar with a wrong magic prefix is quarantined like a
        corrupt LMDES entry; callers always have the JSON artifact (or a
        rebuild) to fall back to.
        """
        from repro.lowlevel.packed import SHARED_MAGIC

        path = self.packed_path_for(machine_name, digest)
        try:
            blob = path.read_bytes()
        except OSError:
            return None
        if not blob.startswith(SHARED_MAGIC):
            logger.warning(
                "quarantining corrupt packed sidecar %s for machine %s",
                path, machine_name,
            )
            self._quarantine(path)
            return None
        return blob

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a bad entry aside (best effort; never raises)."""
        try:
            os.replace(path, path.with_name(path.name + ".bad"))
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                logger.warning(
                    "could not quarantine or unlink bad disk-cache "
                    "entry %s; it will be retried next lookup", path,
                )

    def __len__(self) -> int:
        """Number of live (non-quarantined, non-temporary) entries."""
        return sum(1 for _ in self.directory.glob("*.lmdes.json"))

    def __repr__(self) -> str:
        return f"DiskDescriptionCache({str(self.directory)!r})"
