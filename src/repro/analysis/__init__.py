"""Experiment drivers and reporting.

:class:`~repro.analysis.experiments.ExperimentSuite` regenerates every
table and figure of the paper's evaluation; :mod:`~repro.analysis.figures`
renders reservation tables and constraint trees as ASCII art;
:mod:`~repro.analysis.reporting` formats the result tables.
"""

from repro.analysis.experiments import ExperimentSuite
from repro.analysis.gantt import render_schedule, render_utilization
from repro.analysis.reporting import format_table, reduction_pct

__all__ = [
    "ExperimentSuite",
    "format_table",
    "reduction_pct",
    "render_schedule",
    "render_utilization",
]
