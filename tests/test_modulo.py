"""Tests for the iterative modulo scheduler."""

import pytest

from repro.transforms.pipeline import staged_mdes
from repro.errors import SchedulingError
from repro.ir.operation import Operation
from repro.lowlevel.compiled import compile_mdes
from repro.machines import get_machine
from repro.modulo import (
    Loop,
    LoopEdge,
    ModuloRUMap,
    make_recurrence_loop,
    minimum_initiation_interval,
    modulo_schedule,
)


@pytest.fixture(scope="module")
def sparc():
    machine = get_machine("SuperSPARC")
    compiled = compile_mdes(
        staged_mdes(machine.build_andor(), 4), bitvector=True
    )
    return machine, compiled


class TestModuloRUMap:
    def test_wraps_cycles(self):
        mrt = ModuloRUMap(4)
        mrt.reserve(1, 0b1)
        assert not mrt.is_free(5, 0b1)
        assert not mrt.is_free(-3, 0b1)
        assert mrt.is_free(2, 0b1)

    def test_release_wraps_too(self):
        mrt = ModuloRUMap(3)
        mrt.reserve(2, 0b10)
        mrt.release(5, 0b10)
        assert mrt.is_free(2, 0b10)

    def test_invalid_ii(self):
        with pytest.raises(SchedulingError):
            ModuloRUMap(0)


class TestMiiBounds:
    def test_recurrence_bound(self, sparc):
        machine, compiled = sparc
        loop = make_recurrence_loop(machine, chain_length=5,
                                    parallel_work=0)
        res_mii, rec_mii = minimum_initiation_interval(
            loop, machine, compiled
        )
        # Five unit-latency ops in a distance-1 cycle: RecMII = 5.
        assert rec_mii == 5
        assert res_mii >= 1

    def test_resource_bound_scales_with_parallel_work(self, sparc):
        machine, compiled = sparc
        small = make_recurrence_loop(machine, 2, 1)
        large = make_recurrence_loop(machine, 2, 8)
        _, compiled = sparc
        res_small, _ = minimum_initiation_interval(small, machine,
                                                   compiled)
        res_large, _ = minimum_initiation_interval(large, machine,
                                                   compiled)
        assert res_large > res_small

    def test_zero_distance_cycle_rejected(self, sparc):
        machine, compiled = sparc
        ops = [
            Operation(0, "ADD", ("a",), ("b",)),
            Operation(1, "ADD", ("b",), ("a",)),
        ]
        loop = Loop(ops, [LoopEdge(0, 1, 1, 0), LoopEdge(1, 0, 1, 0)])
        with pytest.raises(SchedulingError, match="zero distance"):
            minimum_initiation_interval(loop, machine, compiled)


class TestModuloSchedule:
    @pytest.mark.parametrize("chain,parallel", [(2, 2), (3, 4), (5, 1)])
    def test_valid_pipelines(self, sparc, chain, parallel):
        machine, compiled = sparc
        loop = make_recurrence_loop(machine, chain, parallel)
        schedule = modulo_schedule(loop, machine, compiled)
        schedule.validate()
        assert len(schedule.times) == len(loop)

    def test_achieves_mii_when_unconstrained(self, sparc):
        machine, compiled = sparc
        loop = make_recurrence_loop(machine, 3, 2)
        res_mii, rec_mii = minimum_initiation_interval(
            loop, machine, compiled
        )
        schedule = modulo_schedule(loop, machine, compiled)
        assert schedule.ii <= max(res_mii, rec_mii) + 2

    def test_modulo_resource_usage_is_conflict_free(self, sparc):
        """Re-simulate the kernel: every iteration overlay must fit."""
        machine, compiled = sparc
        loop = make_recurrence_loop(machine, 2, 4)
        schedule = modulo_schedule(loop, machine, compiled)
        from repro.lowlevel.checker import ConstraintChecker

        mrt = ModuloRUMap(schedule.ii)
        checker = ConstraintChecker()
        for index in sorted(schedule.times):
            op = loop.operations[index]
            constraint = compiled.constraint_for_class(
                machine.classify(op, False)
            )
            handle = checker.try_reserve(
                mrt, constraint, schedule.times[index]
            )
            assert handle is not None, f"kernel overlaps at op {index}"

    def test_unschedulable_raises(self, sparc):
        machine, compiled = sparc
        loop = make_recurrence_loop(machine, 3, 1)
        with pytest.raises(SchedulingError, match="no modulo schedule"):
            modulo_schedule(loop, machine, compiled, max_ii=1)

    def test_eviction_path_produces_valid_schedule(self, sparc):
        """A tight recurrence + memory pressure forces unscheduling."""
        machine, compiled = sparc
        alu, load = "ADD", "LD"
        ops = [
            Operation(0, alu, ("c0",), ("c2",)),
            Operation(1, alu, ("c1",), ("c0",)),
            Operation(2, alu, ("c2",), ("c1",)),
            Operation(3, load, ("l0",), ("p0",), is_load=True),
            Operation(4, load, ("l1",), ("p1",), is_load=True),
            Operation(5, load, ("l2",), ("p2",), is_load=True),
        ]
        edges = [
            LoopEdge(0, 1, 1, 0),
            LoopEdge(1, 2, 1, 0),
            LoopEdge(2, 0, 1, 1),
            LoopEdge(3, 0, 1, 0),
            LoopEdge(4, 1, 1, 0),
            LoopEdge(5, 2, 1, 0),
        ]
        loop = Loop(ops, edges)
        schedule = modulo_schedule(loop, machine, compiled)
        schedule.validate()
