"""Exporters: Prometheus text exposition, JSONL traces, human views.

Three audiences, three formats:

* **Prometheus** (:func:`to_prometheus`) -- the standard text exposition
  format, one family per metric with ``# HELP``/``# TYPE`` headers, so a
  scraper (or a test) can consume a run's counters.  The matching
  :func:`parse_prometheus` exists because the acceptance bar is a round
  trip, not a string that merely looks right.
* **JSONL traces** (:func:`trace_to_jsonl`) -- one root span tree per
  line, children nested; what CI uploads as a run artifact.
* **Humans** (:func:`format_metrics`, :func:`format_trace`) -- the
  ``repro stats`` and ``repro trace`` CLI views.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Tuple

from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Span, Tracer

#: Parsed exposition: family kinds plus every sample's value.
ParsedExposition = Dict[str, Dict]

_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _family_of(name: str, kind: str) -> str:
    if kind == "histogram":
        for suffix in _HISTOGRAM_SUFFIXES:
            if name.endswith(suffix):
                return name[: -len(suffix)]
    return name


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape_label(value: str) -> str:
    out: List[str] = []
    it = iter(range(len(value)))
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(value)}"' for key, value in labels
    )
    return "{" + inner + "}"


def _sample_order(name: str, labels: Tuple[Tuple[str, str], ...], kind: str):
    """Within-family sort key: buckets ascend by numeric ``le``."""
    if kind == "histogram" and name.endswith("_bucket"):
        rest = tuple(pair for pair in labels if pair[0] != "le")
        le = dict(labels).get("le", "+Inf")
        bound = math.inf if le == "+Inf" else float(le)
        return (0, rest, bound, name)
    suffix_rank = 2 if name.endswith("_count") else 1
    return (suffix_rank, labels, 0.0, name)


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    Families are sorted by name; within a histogram family the bucket
    samples ascend by numeric ``le`` (with ``+Inf`` last) followed by
    ``_sum`` and ``_count``, as scrapers require.
    """
    families: Dict[str, List] = {}
    kinds: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    for name, labels, value, kind, help_text in registry.collect():
        family = _family_of(name, kind)
        families.setdefault(family, []).append((name, labels, value, kind))
        kinds.setdefault(family, kind)
        if help_text:
            helps.setdefault(family, help_text)
    lines: List[str] = []
    for family in sorted(families):
        if family in helps:
            lines.append(f"# HELP {family} {helps[family]}")
        lines.append(f"# TYPE {family} {kinds[family]}")
        for name, labels, value, kind in sorted(
            families[family],
            key=lambda s: _sample_order(s[0], s[1], s[3]),
        ):
            lines.append(
                f"{name}{_format_labels(labels)} {_format_value(value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_labels(text: str) -> Tuple[Tuple[str, str], ...]:
    labels: List[Tuple[str, str]] = []
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        key = text[i:eq].strip().lstrip(",").strip()
        assert text[eq + 1] == '"', f"malformed label at {text[eq:]!r}"
        j = eq + 2
        raw: List[str] = []
        while text[j] != '"':
            if text[j] == "\\":
                raw.append(text[j : j + 2])
                j += 2
            else:
                raw.append(text[j])
                j += 1
        labels.append((key, _unescape_label("".join(raw))))
        i = j + 1
    return tuple(sorted(labels))


def parse_prometheus(text: str) -> ParsedExposition:
    """Parse exposition text back into types + samples.

    Returns ``{"types": {family: kind}, "help": {family: text},
    "samples": {(name, labels): value}}`` -- everything the round-trip
    test needs to compare against :meth:`MetricsRegistry.collect`.
    """
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            family, _, kind = rest.partition(" ")
            types[family] = kind.strip()
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            family, _, help_text = rest.partition(" ")
            helps[family] = help_text
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            label_text, _, value_text = rest.rpartition("}")
            labels = _parse_labels(label_text)
        else:
            name, _, value_text = line.partition(" ")
            labels = ()
        value_text = value_text.strip()
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        samples[(name.strip(), labels)] = value
    return {"types": types, "help": helps, "samples": samples}


# ----------------------------------------------------------------------
# Histogram quantile estimation
# ----------------------------------------------------------------------


def histogram_quantile(
    bucket_counts: List[Tuple[float, int]], q: float
) -> float:
    """Estimate the ``q``-quantile from cumulative (bound, count) pairs.

    Standard Prometheus-style linear interpolation within the first
    bucket whose cumulative count reaches ``rank = q * total``: the
    bucket's observations are assumed uniform between its lower and
    upper bound (the lower bound of the first bucket is 0, matching
    the registry's non-negative time/size metrics).  Observations in
    the ``+Inf`` bucket clamp to the largest finite bound -- the usual
    "quantile saturates at the histogram's range" caveat.

    Raises :class:`ValueError` on an empty histogram or ``q`` outside
    [0, 1].
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]: {q}")
    if not bucket_counts:
        raise ValueError("empty bucket list")
    total = bucket_counts[-1][1]
    if total <= 0:
        raise ValueError("histogram has no observations")
    rank = q * total
    lower_bound = 0.0
    lower_count = 0
    for bound, cumulative in bucket_counts:
        if cumulative >= rank and cumulative > lower_count:
            if bound == math.inf:
                # No upper edge to interpolate toward.
                return lower_bound
            span_count = cumulative - lower_count
            fraction = (rank - lower_count) / span_count
            return lower_bound + (bound - lower_bound) * max(0.0, fraction)
        if bound != math.inf:
            lower_bound = bound
            lower_count = cumulative
    return lower_bound


#: The quantiles ``repro stats`` reports.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def format_quantiles(
    registry: MetricsRegistry,
    quantiles: Tuple[float, ...] = DEFAULT_QUANTILES,
) -> str:
    """Estimated quantiles for every histogram, one aligned row each.

    Empty string when the registry holds no populated histograms, so
    the CLI can skip the section entirely.
    """
    header = ["histogram"] + [f"p{q * 100:g}" for q in quantiles]
    header.append("count")
    rows: List[List[str]] = []
    for histogram in registry.histograms():
        if histogram.count <= 0:
            continue
        counts = histogram.bucket_counts()
        row = [f"{histogram.name}{_format_labels(histogram.labels)}"]
        for q in quantiles:
            row.append(f"{histogram_quantile(counts, q):.6g}")
        row.append(str(histogram.count))
        rows.append(row)
    if not rows:
        return ""
    table = [header] + rows
    widths = [
        max(len(row[i]) for row in table) for i in range(len(header))
    ]
    return "\n".join(
        "  ".join(
            cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            for i, cell in enumerate(row)
        )
        for row in table
    )


# ----------------------------------------------------------------------
# JSONL traces
# ----------------------------------------------------------------------


def trace_to_jsonl(roots) -> str:
    """One JSON document per finished root span tree, per line.

    Accepts a list of root :class:`Span` trees or a whole
    :class:`Tracer`, like :func:`format_trace`.
    """
    if isinstance(roots, Tracer):
        roots = roots.roots
    lines = [
        json.dumps(root.to_dict(), sort_keys=True)
        for root in roots
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def trace_from_jsonl(text: str) -> List[Span]:
    """Parse a JSONL trace back into root :class:`Span` trees."""
    return [
        Span.from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


# ----------------------------------------------------------------------
# Human views
# ----------------------------------------------------------------------


def format_metrics(registry: MetricsRegistry) -> str:
    """The ``repro stats`` view: one aligned line per sample."""
    rows: List[Tuple[str, str]] = []
    for name, labels, value, kind, _ in registry.collect():
        rows.append((f"{name}{_format_labels(labels)}", _format_value(value)))
    if not rows:
        return "(no metrics recorded)"
    width = max(len(label) for label, _ in rows)
    return "\n".join(f"{label:<{width}}  {value}" for label, value in rows)


def _format_span(span: Span, depth: int, lines: List[str]) -> None:
    attrs = " ".join(
        f"{key}={value}" for key, value in sorted(span.attrs.items())
    )
    lines.append(
        "  " * depth
        + f"{span.name}  {span.seconds * 1000:.3f}ms"
        + (f"  [{attrs}]" if attrs else "")
    )
    for child in span.children:
        _format_span(child, depth + 1, lines)


def format_trace(roots) -> str:
    """The ``repro trace`` view: an indented span tree.

    Accepts a list of root :class:`Span` trees or a whole
    :class:`Tracer`.
    """
    if isinstance(roots, Tracer):
        roots = roots.roots
    if not roots:
        return "(no spans recorded)"
    lines: List[str] = []
    for root in roots:
        _format_span(root, 0, lines)
    return "\n".join(lines)
