"""Tests for redundancy elimination (section 5)."""

from repro.core.mdes import Mdes, OperationClass
from repro.core.tables import AndOrTree, OrTree, ReservationTable
from repro.core.usage import ResourceUsage
from repro.lowlevel.compiled import compile_mdes
from repro.lowlevel.layout import mdes_size_bytes
from repro.transforms.redundancy import eliminate_redundancy


def u(resource, time):
    return ResourceUsage(time, resource)


def duplicated_mdes(resources):
    """Two classes with structurally identical but unshared trees."""
    m = resources.lookup("M")
    d0, d1 = resources.lookup("D0"), resources.lookup("D1")

    def make_tree(name):
        dec = OrTree(
            (
                ReservationTable((u(d0, -1),)),
                ReservationTable((u(d1, -1),)),
            )
        )
        mem = OrTree((ReservationTable((u(m, 0),)),))
        return AndOrTree((dec, mem), name=name)

    dead = OrTree((ReservationTable((u(m, 7),)),), name="dead")
    return Mdes(
        "Dup",
        resources,
        op_classes={
            "a": OperationClass("a", make_tree("a")),
            "b": OperationClass("b", make_tree("b")),
        },
        opcode_map={"A": "a", "B": "b"},
        unused_trees={"dead": dead},
    )


class TestEliminateRedundancy:
    def test_structural_duplicates_become_shared(self, resources):
        result = eliminate_redundancy(duplicated_mdes(resources))
        assert result.op_class("a").constraint is result.op_class(
            "b"
        ).constraint

    def test_dead_trees_removed(self, resources):
        result = eliminate_redundancy(duplicated_mdes(resources))
        assert result.unused_trees == {}

    def test_size_shrinks(self, resources):
        mdes = duplicated_mdes(resources)
        before = mdes_size_bytes(compile_mdes(mdes))
        after = mdes_size_bytes(compile_mdes(eliminate_redundancy(mdes)))
        assert after < before

    def test_semantics_unchanged(self, resources):
        mdes = duplicated_mdes(resources)
        result = eliminate_redundancy(mdes)
        for name in mdes.op_classes:
            assert (
                result.op_class(name).constraint
                == mdes.op_class(name).constraint
            )

    def test_idempotent(self, resources):
        once = eliminate_redundancy(duplicated_mdes(resources))
        twice = eliminate_redundancy(once)
        assert mdes_size_bytes(compile_mdes(twice)) == mdes_size_bytes(
            compile_mdes(once)
        )

    def test_partial_sharing_of_or_trees(self, resources):
        """Identical sub-OR-trees merge even when parents differ."""
        m = resources.lookup("M")
        d0, d1 = resources.lookup("D0"), resources.lookup("D1")

        def dec_tree():
            return OrTree(
                (
                    ReservationTable((u(d0, -1),)),
                    ReservationTable((u(d1, -1),)),
                )
            )

        a = AndOrTree(
            (dec_tree(), OrTree((ReservationTable((u(m, 0),)),))), name="a"
        )
        b = AndOrTree(
            (dec_tree(), OrTree((ReservationTable((u(m, 1),)),))), name="b"
        )
        mdes = Mdes(
            "P",
            resources,
            op_classes={
                "a": OperationClass("a", a),
                "b": OperationClass("b", b),
            },
            opcode_map={"A": "a", "B": "b"},
        )
        result = eliminate_redundancy(mdes)
        tree_a = result.op_class("a").constraint
        tree_b = result.op_class("b").constraint
        assert tree_a is not tree_b
        assert tree_a.or_trees[0] is tree_b.or_trees[0]

    def test_supersparc_gains_match_paper_shape(self):
        """AND/OR form benefits from sharing whole OR-trees (Table 7)."""
        from repro.machines import get_machine

        machine = get_machine("SuperSPARC")
        mdes = machine.build_andor()
        before = mdes_size_bytes(compile_mdes(mdes))
        after = mdes_size_bytes(compile_mdes(eliminate_redundancy(mdes)))
        assert after < before
        # The duplicated inline decoder trees must now be shared.
        result = eliminate_redundancy(mdes)
        load = result.op_class("load").constraint
        ialu = result.op_class("ialu_2src").constraint
        shared = {id(t) for t in load.or_trees} & {
            id(t) for t in ialu.or_trees
        }
        assert shared  # figure 4's sharing
