"""Vectorized batch-probe microbenchmark (``try_reserve_many``).

The batched query layer's claim is that one numpy window evaluation
replaces hundreds of scalar ``try_reserve`` calls without changing a
single counter.  This benchmark saturates a congested region of the
resource-usage map so every placement has to scan deep, then times the
same first-fit scan through the vectorized fast path and through the
forced-scalar loop, asserting bit-identical outcomes and the >= 5x
acceptance floor on the bit-vector backend.
"""

import time

from conftest import write_result

from repro.analysis.reporting import format_table
from repro.engine import create_engine
from repro.lowlevel.packed import numpy_available
from repro.machines import get_machine

import pytest

MACHINE = "SuperSPARC"
#: Cycles saturated before the first feasible slot.  Deep enough that
#: the galloping scan reaches full-width windows, where the numpy
#: evaluation's fixed per-call overhead is amortized.
CONGESTION = 3000
#: First-fit scans timed per engine.
REPS = 20
#: The acceptance floor for the vectorized bit-vector fast path.
SPEEDUP_FLOOR = 5.0


def _scalar_variant(engine, backend):
    return type(engine)(engine.compiled, name=backend, vectorized=False)


def _saturate(engine, state, class_name, cycles):
    """Fill every cycle in ``cycles`` until the class can't issue."""
    for cycle in range(cycles):
        while engine.try_reserve(state, class_name, cycle) is not None:
            pass


def _busiest_class(engine):
    """The class whose saturation is cheapest to scan: fewest slots."""
    probe_state = engine.new_state()
    best, best_slots = None, None
    for class_name in sorted(engine.compiled.constraints):
        slots = 0
        while engine.try_reserve(probe_state, class_name, 0) is not None:
            slots += 1
        probe_state = engine.new_state()
        if best_slots is None or slots < best_slots:
            best, best_slots = class_name, slots
    return best


def _time_first_fit(engine, state, class_name, window):
    """Median-free total: REPS first-fit scans, reserve+release each."""
    started = time.perf_counter()
    winner = None
    for _ in range(REPS):
        handle = engine.try_reserve_many(state, class_name, window)
        assert handle is not None
        winner = handle.cycle
        engine.release(handle)
    return time.perf_counter() - started, winner


def _time_probe(engine, state, class_name, lo, hi):
    started = time.perf_counter()
    bitmask = 0
    for _ in range(REPS):
        bitmask = engine.probe_window(state, class_name, lo, hi)
    return time.perf_counter() - started, bitmask


@pytest.mark.skipif(
    not numpy_available(), reason="vectorized path requires numpy"
)
@pytest.mark.parametrize("backend", ["bitvector", "eichenberger"])
def test_vectorized_first_fit(results_dir, benchmark, backend):
    machine = get_machine(MACHINE)
    fast = create_engine(backend, machine)
    slow = _scalar_variant(fast, backend)
    assert fast.vectorized and not slow.vectorized

    class_name = _busiest_class(fast)
    fast_state, slow_state = fast.new_state(), slow.new_state()
    _saturate(fast, fast_state, class_name, CONGESTION)
    _saturate(slow, slow_state, class_name, CONGESTION)
    assert fast_state == slow_state
    window = range(0, CONGESTION + 64)

    def run_both():
        fast_s, fast_winner = _time_first_fit(
            fast, fast_state, class_name, window
        )
        slow_s, slow_winner = _time_first_fit(
            slow, slow_state, class_name, window
        )
        return fast_s, fast_winner, slow_s, slow_winner

    fast_s, fast_winner, slow_s, slow_winner = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    probe_fast_s, fast_bits = _time_probe(
        fast, fast_state, class_name, 0, CONGESTION + 64
    )
    probe_slow_s, slow_bits = _time_probe(
        slow, slow_state, class_name, 0, CONGESTION + 64
    )

    # Bit-for-bit equivalence on the timed runs themselves.
    assert fast_winner == slow_winner >= CONGESTION
    assert fast_bits == slow_bits
    assert fast_state == slow_state

    speedup = slow_s / fast_s if fast_s else 0.0
    probe_speedup = probe_slow_s / probe_fast_s if probe_fast_s else 0.0
    text = format_table(
        ("Measure", "Value"),
        [
            ("machine / backend", f"{MACHINE} / {backend}"),
            ("operation class", class_name),
            ("congested cycles", str(CONGESTION)),
            ("first-fit scans", str(REPS)),
            ("scalar seconds", f"{slow_s:.4f}"),
            ("vectorized seconds", f"{fast_s:.4f}"),
            ("first-fit speedup", f"{speedup:.1f}x"),
            ("probe scalar seconds", f"{probe_slow_s:.4f}"),
            ("probe vectorized seconds", f"{probe_fast_s:.4f}"),
            ("probe speedup", f"{probe_speedup:.1f}x"),
        ],
        title="Vectorized batch probes vs the scalar first-fit loop",
    )
    payload = {
        "machine": MACHINE,
        "backend": backend,
        "class": class_name,
        "congested_cycles": CONGESTION,
        "reps": REPS,
        "scalar_seconds": slow_s,
        "vectorized_seconds": fast_s,
        "first_fit_speedup": speedup,
        "probe_scalar_seconds": probe_slow_s,
        "probe_vectorized_seconds": probe_fast_s,
        "probe_speedup": probe_speedup,
        "winner_cycle": fast_winner,
        "results_identical": True,
    }
    name = (
        "vectorized.txt" if backend == "bitvector"
        else f"vectorized-{backend}.txt"
    )
    write_result(results_dir, name, text, payload=payload)

    # The acceptance floor: deep scans through the numpy window path
    # must beat the scalar loop by a wide margin on the bit-vector
    # backend (eichenberger rides the same code; no separate floor).
    if backend == "bitvector":
        assert speedup >= SPEEDUP_FLOOR
