"""Synthetic SPEC CINT92-shaped workloads.

The paper schedules 201k-282k static operations of SPEC CINT92 assembly
per platform.  That corpus is proprietary, so this package synthesizes
workloads with the same observable shape: each machine's opcode mix is
calibrated against the per-class "% of scheduling attempts" columns of the
paper's Tables 1-4, blocks end in branches, and register reuse follows the
prepass (virtual registers) or postpass (8 physical x86 registers)
discipline the paper used per platform.  Everything is seeded and
deterministic.
"""

from repro.workloads.generator import WorkloadConfig, generate_blocks

__all__ = ["WorkloadConfig", "generate_blocks"]
