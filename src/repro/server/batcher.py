"""Micro-batching: many small requests, one warm batch run.

Concurrent ``POST /v1/schedule`` requests that are *compatible* -- same
machine, backend, stage, direction, and verify flag
(:meth:`ScheduleRequest.batch_key`) -- are concatenated into a single
:class:`~repro.service.models.BatchRequest` and driven through the
fault-tolerant batch pool together, then split back apart by block
range.  One description compile, one engine warm-up, one pool dispatch
amortized over every rider.

Splitting is lossless because block scheduling is independent per
block: a block's schedule is a pure function of (machine, backend,
stage, direction, block), never of its neighbours in the batch.  Only
fold-order-sensitive *statistics* depend on grouping, which is why the
per-request response carries the group's shared resilience/cache
summaries plus a ``batched`` note, not a fabricated per-request stats
split.  The concurrency test in ``tests/test_server.py`` asserts the
bit-identical part.

Batches run with ``on_error="report"`` regardless of what the server
default says: one rider's quarantined block must come back as *its*
typed failure record, not poison the whole group.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.errors import DeadlineExceededError
from repro.service.models import (
    BatchConfig,
    BatchRequest,
    ScheduleRequest,
    ScheduleResponse,
)

#: runner(batch_request) -> (BatchResult, captured span dicts)
Runner = Callable[[BatchRequest], Awaitable[Tuple[Any, List[dict]]]]


@dataclass
class _Pending:
    """One rider: its request, block count, and completion future."""

    request: ScheduleRequest
    blocks: List[Any]
    future: "asyncio.Future" = field(repr=False, default=None)


@dataclass
class _Group:
    """One open batching window (one compatibility key)."""

    key: tuple
    riders: List[_Pending] = field(default_factory=list)
    total_blocks: int = 0
    flusher: Optional["asyncio.Task"] = None


class MicroBatcher:
    """Coalesce compatible schedule requests inside a short window.

    Args:
        runner: Awaitable executing one :class:`BatchRequest` off-loop
            and returning ``(BatchResult, span_dicts)`` -- normally
            :meth:`BatchSubmitter.submit_captured`; injectable so tests
            can interpose slow or failing runs.
        base_config: Server-side :class:`BatchConfig` defaults (pool
            shape, cache dir); per-request fields (backend, stage,
            direction, verify) are overlaid from the batch key.
        window_seconds: How long the first rider holds the window open
            for others to join.  Zero still batches whatever lands in
            the same event-loop tick.
        max_batch_blocks: Flush early once a window holds this many
            blocks, bounding batch latency under heavy load.
    """

    def __init__(
        self,
        runner: Runner,
        base_config: Optional[BatchConfig] = None,
        window_seconds: float = 0.004,
        max_batch_blocks: int = 4096,
    ) -> None:
        if window_seconds < 0:
            raise ValueError(
                f"window_seconds must be >= 0: {window_seconds}"
            )
        if max_batch_blocks < 1:
            raise ValueError(
                f"max_batch_blocks must be >= 1: {max_batch_blocks}"
            )
        self._runner = runner
        self._base_config = base_config or BatchConfig()
        self.window_seconds = window_seconds
        self.max_batch_blocks = max_batch_blocks
        self._groups: Dict[tuple, _Group] = {}
        self.batches_total = 0
        self.batched_requests_total = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    async def submit(self, request: ScheduleRequest) -> ScheduleResponse:
        """Ride a window; resolves to this request's own response.

        A ``deadline_seconds`` on the request bounds the *wait*: past
        it the rider resolves to a
        :class:`~repro.errors.DeadlineExceededError` even though the
        underlying batch keeps running for the other riders.
        """
        loop = asyncio.get_running_loop()
        pending = _Pending(
            request=request,
            blocks=request.resolve_blocks(),
            future=loop.create_future(),
        )
        key = request.batch_key()
        group = self._groups.get(key)
        if group is None:
            group = _Group(key=key)
            self._groups[key] = group
            group.flusher = loop.create_task(self._window(key))
        group.riders.append(pending)
        group.total_blocks += len(pending.blocks)
        if group.total_blocks >= self.max_batch_blocks:
            self._close_window(key)
        if request.deadline_seconds is None:
            return await pending.future
        try:
            return await asyncio.wait_for(
                asyncio.shield(pending.future), request.deadline_seconds
            )
        except asyncio.TimeoutError:
            pending.future.add_done_callback(_swallow_result)
            raise DeadlineExceededError(
                f"request {request.request_id or '<anonymous>'} missed "
                f"its {request.deadline_seconds:g}s deadline"
            ) from None

    async def _window(self, key: tuple) -> None:
        """Hold the window open, then flush whoever joined."""
        try:
            if self.window_seconds:
                await asyncio.sleep(self.window_seconds)
        except asyncio.CancelledError:
            return  # an early flush already took the group
        group = self._groups.pop(key, None)
        if group is not None:
            await self._flush(group)

    def _close_window(self, key: tuple) -> None:
        """Flush a full window immediately (its timer is cancelled)."""
        group = self._groups.pop(key, None)
        if group is None:
            return
        if group.flusher is not None:
            group.flusher.cancel()
        asyncio.get_running_loop().create_task(self._flush(group))

    async def drain(self) -> None:
        """Flush every open window now (shutdown path)."""
        for key in list(self._groups):
            self._close_window(key)
        riders = [
            pending.future
            for group in self._groups.values()
            for pending in group.riders
        ]
        if riders:  # pragma: no cover - _close_window emptied the dict
            await asyncio.gather(*riders, return_exceptions=True)

    # ------------------------------------------------------------------
    # Flush: one batch run, split back per rider
    # ------------------------------------------------------------------

    async def _flush(self, group: _Group) -> None:
        riders = group.riders
        blocks: List[Any] = []
        for pending in riders:
            blocks.extend(pending.blocks)
        machine, backend, stage, direction, verify = group.key
        from repro.service.models import DEFAULT_BACKEND

        config = replace(
            self._base_config,
            backend=None if backend == DEFAULT_BACKEND else backend,
            stage=stage,
            direction=direction,
            verify=verify,
            on_error="report",
        )
        batch = BatchRequest(
            machine=machine, blocks=tuple(blocks), config=config,
            client="batched", request_id=riders[0].request.request_id,
        )
        started = time.perf_counter()
        try:
            result, spans = await self._runner(batch)
        except Exception as exc:
            for pending in riders:
                if not pending.future.done():
                    pending.future.set_exception(exc)
            return
        seconds = time.perf_counter() - started
        self.batches_total += 1
        self.batched_requests_total += len(riders)
        self._split(riders, batch, result, seconds, spans)

    def _split(
        self, riders: List[_Pending], batch: BatchRequest, result,
        seconds: float, spans: List[dict],
    ) -> None:
        """Hand each rider its slice of the group's result."""
        group_note = {
            "group_requests": len(riders),
            "group_blocks": sum(len(p.blocks) for p in riders),
            "batch_seconds": seconds,
        }
        schedules = iter(result.schedules)
        failures = sorted(result.errors, key=lambda f: f.block_index)
        failure_pos = 0
        offset = 0
        for pending in riders:
            count = len(pending.blocks)
            end = offset + count
            mine = []
            while (
                failure_pos < len(failures)
                and failures[failure_pos].block_index < end
            ):
                failure = failures[failure_pos]
                mine.append(
                    replace(failure, block_index=failure.block_index - offset)
                )
                failure_pos += 1
            survived = count - len(mine)
            my_schedules = [next(schedules) for _ in range(survived)]
            response = self._rider_response(
                pending.request, result, my_schedules, mine,
                seconds, dict(group_note, offset=offset),
            )
            if offset == 0:
                # The group's captured trace rides with the first
                # rider; the app grafts it under that request's
                # server:request span (duplicating it per rider would
                # braid N copies into the tree).
                response.captured_spans = spans
            if not pending.future.done():
                pending.future.set_result(response)
            offset = end

    def _rider_response(
        self, request: ScheduleRequest, result, schedules, errors,
        seconds: float, note: dict,
    ) -> ScheduleResponse:
        cache = result.cache_stats
        return ScheduleResponse(
            machine=request.machine_name,
            backend=request.backend_name,
            stage=request.stage,
            direction=request.direction,
            kind="batch",
            blocks=len(schedules),
            ops=sum(len(s.block) for s in schedules),
            cycles=sum(s.length for s in schedules),
            wall_seconds=seconds,
            schedules=schedules,
            errors=errors,
            verify=(
                result.verify_report.summary()
                if result.verify_report is not None else None
            ),
            resilience={
                "retries": result.retries,
                "timeouts": result.timeouts,
                "pool_restarts": result.pool_restarts,
                "degraded": result.degraded,
                "quarantined": result.quarantined,
            },
            cache={
                "memory_hits": cache.hits,
                "memory_misses": cache.misses,
                "disk_hits": cache.disk_hits,
                "disk_misses": cache.disk_misses,
                "disk_stores": cache.disk_stores,
                "disk_quarantined": cache.disk_quarantined,
            },
            batched=note,
            request_id=request.request_id,
            result=result,
        )


def _swallow_result(future: "asyncio.Future") -> None:
    """Retrieve an abandoned rider's outcome so asyncio stays quiet."""
    if not future.cancelled():
        future.exception()


__all__ = ["MicroBatcher"]
