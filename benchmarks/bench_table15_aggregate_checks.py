"""Table 15: aggregate effect of all transformations on checks."""

import pytest
from conftest import write_result

from repro.machines import MACHINE_NAMES, get_machine
from repro.scheduler import schedule_workload


def test_table15_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.table15())
    rows = {row[0]: row for row in suite.table15_rows()}
    # Paper headline: up to a factor of ten fewer checks when the
    # transformations are combined with AND/OR-trees.
    assert rows["SuperSPARC"][4] < rows["SuperSPARC"][1] / 5
    assert rows["K5"][4] < rows["K5"][1] / 5
    # Transformations alone (OR form) reach roughly a factor 1.5-2.6.
    assert rows["SuperSPARC"][2] < rows["SuperSPARC"][1]
    write_result(results_dir, "table15_aggregate_checks.txt", text)


@pytest.mark.parametrize("machine_name", MACHINE_NAMES)
def test_table15_bench_fully_optimized(
    benchmark, kernel_workloads, kernel_compiled, machine_name
):
    """Time scheduling with the fully optimized AND/OR description."""
    machine = get_machine(machine_name)
    compiled = kernel_compiled(machine_name, "andor", 4, True)
    blocks = kernel_workloads(machine_name)
    result = benchmark(schedule_workload, machine, compiled, blocks)
    assert result.total_ops > 0
