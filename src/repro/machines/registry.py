"""Machine registry: look up machines by name.

Two name spaces resolve here: the hand-written processors (the paper's
four plus retargeting demos), and synthetic fleet variants addressed as
``synth:<family>:<seed>:<index>`` (see :mod:`repro.machines.synth`).
Synth resolution is deterministic -- the same name builds byte-identical
HMDES source in any process -- so batch-pool workers and the server can
rebuild any variant from its name alone, exactly as they do for the
built-ins.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.machines.base import Machine

#: Canonical machine names, in the order the paper's tables list them.
MACHINE_NAMES = ("PA7100", "Pentium", "SuperSPARC", "K5")

#: Additional targets beyond the paper's evaluation (retargeting demos).
EXTRA_MACHINE_NAMES = ("Cydra_lite",)

_BUILDERS: Dict[str, Callable[[], Machine]] = {}
_CACHE: Dict[str, Machine] = {}


def _builders() -> Dict[str, Callable[[], Machine]]:
    if not _BUILDERS:
        from repro.machines import amdk5, pa7100, pentium, supersparc, vliw

        _BUILDERS.update(
            {
                "PA7100": pa7100.build_machine,
                "Pentium": pentium.build_machine,
                "SuperSPARC": supersparc.build_machine,
                "K5": amdk5.build_machine,
                "Cydra_lite": vliw.build_machine,
            }
        )
    return _BUILDERS


def get_machine(name: str) -> Machine:
    """Return the named machine (cached); raises KeyError for unknowns.

    ``synth:`` names are delegated to the synthetic-fleet resolver,
    which keeps its own bounded LRU (unbounded fleets must not pin
    memory the way the small built-in cache safely can).
    """
    if name.startswith("synth:"):
        from repro.machines import synth

        return synth.resolve(name)
    builders = _builders()
    if name not in builders:
        available = ", ".join(MACHINE_NAMES + EXTRA_MACHINE_NAMES)
        raise KeyError(
            f"unknown machine {name!r}; available: {available}, "
            "or synth:<family>:<seed>:<index>"
        )
    if name not in _CACHE:
        _CACHE[name] = builders[name]()
    return _CACHE[name]
