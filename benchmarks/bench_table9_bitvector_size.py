"""Table 9: representation size before/after bit-vector packing."""

from conftest import write_result

from repro.transforms.pipeline import staged_mdes
from repro.lowlevel.compiled import compile_mdes
from repro.machines import get_machine


def test_table9_regenerate(suite, results_dir, benchmark):
    text = benchmark(lambda: suite.table9())
    rows = {row[0]: row for row in suite.table9_rows()}
    for row in rows.values():
        assert row[2] <= row[1]
        assert row[5] <= row[4]
    # The Pentium benefits most: its options check several resources in
    # the same cycle.
    pentium_cut = (rows["Pentium"][1] - rows["Pentium"][2]) / rows[
        "Pentium"
    ][1]
    pa_cut = (rows["PA7100"][1] - rows["PA7100"][2]) / rows["PA7100"][1]
    assert pentium_cut > pa_cut
    write_result(results_dir, "table9_bitvector_size.txt", text)


def test_table9_bench_bitvector_compile(benchmark):
    """Time bit-vector compilation of the cleaned Pentium description."""
    mdes = staged_mdes(get_machine("Pentium").build_or(), 1)
    compiled = benchmark(compile_mdes, mdes, True)
    assert compiled.bitvector
