"""Tests for the HMDES macro preprocessor."""

import pytest

from repro.errors import HmdesSyntaxError
from repro.hmdes.preprocess import preprocess, strip_comments


class TestComments:
    def test_line_comment_stripped(self):
        assert strip_comments("a // gone\nb").splitlines() == ["a ", "b"]

    def test_block_comment_preserves_lines(self):
        text = "a /* one\ntwo */ b"
        assert strip_comments(text).count("\n") == 1

    def test_directive_in_comment_is_inert(self):
        assert "$define" not in preprocess("// $define X 1\n")


class TestDefine:
    def test_simple_substitution(self):
        assert preprocess("$define N 3\nx $N y").strip() == "x 3 y"

    def test_define_uses_earlier_define(self):
        result = preprocess("$define A 2\n$define B $A\n$B")
        assert result.strip() == "2"

    def test_undefined_macro_raises(self):
        with pytest.raises(HmdesSyntaxError, match="undefined macro"):
            preprocess("$NOPE")


class TestFor:
    def test_simple_expansion(self):
        result = preprocess("$for i in 0..2 { a$i }")
        assert result.replace(" ", "") == "a0a1a2"

    def test_nested_loops(self):
        result = preprocess("$for i in 0..1 { $for j in 0..1 { ($i,$j) } }")
        flat = result.replace(" ", "")
        assert flat == "(0,0)(0,1)(1,0)(1,1)"

    def test_macro_bound(self):
        result = preprocess("$define HI 2\n$for i in 0..$HI { $i }")
        assert result.split() == ["0", "1", "2"]

    def test_negative_bounds(self):
        result = preprocess("$for i in -2..0 { $i }")
        assert result.split() == ["-2", "-1", "0"]

    def test_empty_range_raises(self):
        with pytest.raises(HmdesSyntaxError, match="empty range"):
            preprocess("$for i in 3..1 { $i }")

    def test_unterminated_block_raises(self):
        with pytest.raises(HmdesSyntaxError, match="unterminated"):
            preprocess("$for i in 0..1 { oops")

    def test_non_integer_bound_raises(self):
        with pytest.raises(HmdesSyntaxError, match="not an integer"):
            preprocess("$define W xyz\n$for i in 0..$W { $i }")

    def test_inner_variable_not_confused_with_typo(self):
        # The outer pass must leave $j alone until the inner loop binds it.
        result = preprocess(
            "$for i in 0..0 { $for j in 1..1 { $i$j } }"
        )
        assert result.strip() == "01"
