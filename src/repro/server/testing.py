"""In-process ASGI client: drive the app with no socket.

``tests/test_server.py`` exercises the full request path -- routing,
admission, micro-batching, error mapping -- by calling the app exactly
the way an ASGI server would, minus the network.  The client speaks
the same three-message HTTP exchange (``http.request`` in,
``http.response.start`` + ``http.response.body`` out) plus the
lifespan protocol, so anything proven here holds under the socket host
unchanged.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Tuple


class Response:
    """One in-process HTTP exchange's outcome."""

    def __init__(
        self, status: int, headers: List[Tuple[bytes, bytes]], body: bytes,
    ) -> None:
        self.status = status
        self.headers = {
            key.decode().lower(): value.decode() for key, value in headers
        }
        self.body = body

    def json(self) -> Any:
        return json.loads(self.body)

    @property
    def text(self) -> str:
        return self.body.decode()

    def __repr__(self) -> str:
        return f"Response({self.status}, {len(self.body)} bytes)"


class AsgiClient:
    """Async context manager running an app's lifespan around requests.

    ::

        async with AsgiClient(app) as client:
            response = await client.post("/v1/schedule", {...})
            assert response.status == 200
    """

    def __init__(self, app) -> None:
        self.app = app
        self._lifespan_task: Optional["asyncio.Task"] = None
        self._to_app: Optional["asyncio.Queue"] = None
        self._from_app: Optional["asyncio.Queue"] = None

    # ------------------------------------------------------------------
    # Lifespan plumbing
    # ------------------------------------------------------------------

    async def __aenter__(self) -> "AsgiClient":
        self._to_app = asyncio.Queue()
        self._from_app = asyncio.Queue()

        async def _receive():
            return await self._to_app.get()

        async def _send(message):
            await self._from_app.put(message)

        self._lifespan_task = asyncio.get_running_loop().create_task(
            self.app({"type": "lifespan"}, _receive, _send)
        )
        await self._to_app.put({"type": "lifespan.startup"})
        message = await self._from_app.get()
        if message["type"] != "lifespan.startup.complete":
            raise RuntimeError(f"startup failed: {message}")
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self._to_app.put({"type": "lifespan.shutdown"})
        message = await self._from_app.get()
        if message["type"] != "lifespan.shutdown.complete":
            raise RuntimeError(f"shutdown failed: {message}")
        await self._lifespan_task

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    async def request(
        self, method: str, path: str, body: bytes = b"",
    ) -> Response:
        """One HTTP exchange against the app."""
        scope = {
            "type": "http",
            "asgi": {"version": "3.0"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": path,
            "raw_path": path.encode(),
            "query_string": b"",
            "headers": [],
            "client": ("testclient", 0),
            "server": ("testserver", 80),
        }
        sent = {"done": False}
        received: Dict[str, Any] = {"status": 0, "headers": [], "body": b""}

        async def _receive():
            if sent["done"]:
                return {"type": "http.disconnect"}
            sent["done"] = True
            return {"type": "http.request", "body": body, "more_body": False}

        async def _send(message):
            if message["type"] == "http.response.start":
                received["status"] = message["status"]
                received["headers"] = list(message.get("headers", ()))
            elif message["type"] == "http.response.body":
                received["body"] += message.get("body", b"")

        await self.app(scope, _receive, _send)
        return Response(
            received["status"], received["headers"], received["body"]
        )

    async def get(self, path: str) -> Response:
        return await self.request("GET", path)

    async def post(self, path: str, payload: Any) -> Response:
        body = (
            payload if isinstance(payload, bytes)
            else json.dumps(payload).encode()
        )
        return await self.request("POST", path, body=body)


__all__ = ["AsgiClient", "Response"]
