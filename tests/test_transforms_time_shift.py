"""Tests for usage-time shifting (section 7).

The transformation's correctness argument is that forbidden latencies --
and therefore collision vectors -- are invariant under adding a
per-resource constant to all usage times of that resource.  The tests
check both the mechanics and that invariant.
"""

import pytest

from repro.core.expand import as_or_tree
from repro.core.tables import OrTree, ReservationTable
from repro.core.usage import ResourceUsage
from repro.errors import MdesError
from repro.machines import get_machine
from repro.transforms.time_shift import (
    compute_shift_constants,
    shift_usage_times,
)


def u(resource, time):
    return ResourceUsage(time, resource)


def forbidden_latencies(option_a, option_b):
    """Forbidden issue distances between two options (section 7)."""
    forbidden = set()
    for usage_a in option_a.usages:
        for usage_b in option_b.usages:
            if usage_a.resource is usage_b.resource:
                distance = usage_a.time - usage_b.time
                if distance >= 0:
                    forbidden.add(distance)
    return forbidden


class TestShiftConstants:
    def test_forward_uses_earliest(self, toy_mdes):
        constants = compute_shift_constants(toy_mdes, "forward")
        by_name = {r.name: c for r, c in constants.items()}
        assert by_name == {"M": 0, "D0": -1, "D1": -1, "W0": 1, "W1": 1}

    def test_backward_uses_latest(self, toy_mdes):
        constants = compute_shift_constants(toy_mdes, "backward")
        by_name = {r.name: c for r, c in constants.items()}
        assert by_name == {"M": 0, "D0": -1, "D1": -1, "W0": 1, "W1": 1}

    def test_unknown_direction_rejected(self, toy_mdes):
        with pytest.raises(MdesError, match="direction"):
            compute_shift_constants(toy_mdes, "sideways")


class TestShiftUsageTimes:
    def test_forward_shift_zeroes_earliest_usage(self, toy_mdes):
        shifted = shift_usage_times(toy_mdes)
        flat = as_or_tree(shifted.op_class("load").constraint)
        for option in flat.options:
            for usage in option.usages:
                assert usage.time == 0  # every resource had one time

    def test_supersparc_concentrates_at_zero(self):
        mdes = get_machine("SuperSPARC").build_or()
        shifted = shift_usage_times(mdes)
        zero_usages = total_usages = 0
        for constraint in shifted.constraints():
            for option in as_or_tree(constraint).options:
                for usage in option.usages:
                    total_usages += 1
                    zero_usages += usage.time == 0
        assert zero_usages / total_usages > 0.8

    def test_no_negative_times_after_forward_shift(self):
        mdes = get_machine("SuperSPARC").build_or()
        shifted = shift_usage_times(mdes)
        for constraint in shifted.constraints():
            for option in as_or_tree(constraint).options:
                assert option.min_time() >= 0

    def test_collision_vectors_preserved(self):
        """The transformation's soundness condition, checked exhaustively
        on the PA7100 (small enough for all pairs)."""
        mdes = get_machine("PA7100").build_or()
        shifted = shift_usage_times(mdes)
        originals, shifteds = [], []
        for name in sorted(mdes.op_classes):
            originals.extend(
                as_or_tree(mdes.op_class(name).constraint).options
            )
            shifteds.extend(
                as_or_tree(shifted.op_class(name).constraint).options
            )
        assert len(originals) == len(shifteds)
        for a_index in range(len(originals)):
            for b_index in range(len(originals)):
                assert forbidden_latencies(
                    originals[a_index], originals[b_index]
                ) == forbidden_latencies(
                    shifteds[a_index], shifteds[b_index]
                ), (a_index, b_index)

    def test_sharing_preserved(self):
        mdes = get_machine("SuperSPARC").build_andor()
        shifted = shift_usage_times(mdes)
        ialu1 = shifted.op_class("ialu_1src").constraint
        ialu2 = shifted.op_class("ialu_2src").constraint
        shared = {id(t) for t in ialu1.or_trees} & {
            id(t) for t in ialu2.or_trees
        }
        assert len(shared) == 3

    def test_schedule_preserved(self, small_suite):
        assert small_suite.verify_schedule_invariance("SuperSPARC")
