"""Tests for the HMDES parser."""

import pytest

from repro.errors import HmdesSyntaxError
from repro.hmdes import ast
from repro.hmdes.parser import parse_source

MINIMAL = """
mdes M;
section resource { A; B[0..1]; C[7]; }
section table { T { use A at 0; use B[1] at -1; } }
section ortree { O { option { use A at 0; } option T; } }
section andortree { AO { ortree O; ortree { option { use C[7] at 2; } } } }
section opclass {
    k1 { resv AO; latency 3; }
    k2 { resv O; }
    k3 { resv ortree { option { use A at 1; } }; }
}
section operation { X: k1; Y: k2; Z: k3; }
"""


class TestParser:
    def test_minimal_file(self):
        node = parse_source(MINIMAL)
        assert node.name == "M"
        assert len(node.resources) == 3
        assert len(node.tables) == 1
        assert len(node.or_trees) == 1
        assert len(node.and_or_trees) == 1
        assert len(node.op_classes) == 3
        assert len(node.operations) == 3

    def test_resource_range_and_single_index(self):
        node = parse_source(MINIMAL)
        scalar, ranged, indexed = node.resources
        assert scalar.expanded_names() == ["A"]
        assert ranged.expanded_names() == ["B[0]", "B[1]"]
        assert indexed.expanded_names() == ["C[7]"]

    def test_table_usages(self):
        node = parse_source(MINIMAL)
        table = node.tables[0]
        assert [(u.resource, u.time) for u in table.usages] == [
            ("A", 0), ("B[1]", -1)
        ]

    def test_option_ref_and_inline(self):
        node = parse_source(MINIMAL)
        inline, ref = node.or_trees[0].options
        assert inline.ref is None and inline.usages is not None
        assert ref.ref == "T"

    def test_andortree_children(self):
        node = parse_source(MINIMAL)
        children = node.and_or_trees[0].children
        assert isinstance(children[0], ast.OrTreeRef)
        assert isinstance(children[1], ast.OrTreeNode)

    def test_default_latency_is_one(self):
        node = parse_source(MINIMAL)
        by_name = {c.name: c for c in node.op_classes}
        assert by_name["k1"].latency == 3
        assert by_name["k2"].latency == 1

    def test_empty_resource_range_rejected(self):
        with pytest.raises(HmdesSyntaxError, match="empty"):
            parse_source("mdes M; section resource { A[3..1]; }")

    def test_unknown_section_rejected(self):
        with pytest.raises(HmdesSyntaxError, match="unknown section"):
            parse_source("mdes M; section bogus { }")

    def test_missing_mdes_header_rejected(self):
        with pytest.raises(HmdesSyntaxError):
            parse_source("section resource { A; }")

    def test_generative_for_loop_in_section(self):
        node = parse_source(
            "mdes M; section resource { R[0..3]; }\n"
            "section ortree { O { $for i in 0..3 { "
            "option { use R[$i] at 0; } } } }"
        )
        assert len(node.or_trees[0].options) == 4
