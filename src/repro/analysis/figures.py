"""ASCII renderings of reservation tables and constraint trees.

These reproduce the paper's illustrative figures: the grid drawings of
figures 1 and 5 and the tree drawings of figures 3, 4, and 6.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.resource import Resource
from repro.core.tables import AndOrTree, Constraint, OrTree, ReservationTable


def _used_resources(options: Sequence[ReservationTable]) -> List[Resource]:
    resources = set()
    for option in options:
        resources.update(option.resources())
    return sorted(resources, key=lambda resource: resource.index)


def render_reservation_table(
    option: ReservationTable,
    columns: Sequence[Resource],
) -> List[str]:
    """Render one option as a cycle x resource grid (figure 1 style)."""
    if option.usages:
        low = min(option.min_time(), 0)
        high = option.max_time()
    else:
        low = high = 0
    header = "Cycle | " + " ".join(f"{res.name:^10s}" for res in columns)
    lines = [header, "-" * len(header)]
    used = {(usage.time, usage.resource) for usage in option.usages}
    for cycle in range(low, high + 1):
        cells = [
            f"{'X':^10s}" if (cycle, resource) in used else f"{'':^10s}"
            for resource in columns
        ]
        lines.append(f"{cycle:5d} | " + " ".join(cells))
    return lines


def render_or_tree(tree: OrTree, label: str = "") -> str:
    """Render an OR-tree as a prioritized list of option grids."""
    columns = _used_resources(tree.options)
    lines = [f"OR-tree {label or tree.name or '<anon>'} "
             f"({len(tree)} options, priority order):"]
    for position, option in enumerate(tree.options, start=1):
        lines.append(f"  Option {position}:")
        lines.extend(
            "    " + line
            for line in render_reservation_table(option, columns)
        )
    return "\n".join(lines)


def render_and_or_tree(tree: AndOrTree, label: str = "") -> str:
    """Render an AND/OR-tree: AND of compact OR summaries (figure 3b)."""
    lines = [f"AND/OR-tree {label or tree.name or '<anon>'} "
             f"(AND over {len(tree)} OR-trees; "
             f"{tree.option_product()} flat options):"]
    for position, or_tree in enumerate(tree.or_trees, start=1):
        summaries = []
        for option in or_tree.options:
            usage_text = ", ".join(
                f"{usage.resource.name}@{usage.time}"
                for usage in option.usages
            )
            summaries.append(f"[{usage_text}]")
        joint = " OR ".join(summaries)
        lines.append(f"  AND[{position}] {or_tree.name or '<anon>'}: {joint}")
    return "\n".join(lines)


def render_constraint(constraint: Constraint, label: str = "") -> str:
    """Render either representation."""
    if isinstance(constraint, AndOrTree):
        return render_and_or_tree(constraint, label)
    return render_or_tree(constraint, label)


def render_options_histogram(
    histogram: dict, max_width: int = 50
) -> str:
    """Render figure 2: distribution of options checked per attempt."""
    if not histogram:
        return "(no attempts recorded)"
    total = sum(histogram.values())
    peak = max(histogram.values())
    lines = ["options-checked  % of attempts"]
    for options in sorted(histogram):
        count = histogram[options]
        share = count / total * 100
        bar = "#" * max(1, round(count / peak * max_width))
        lines.append(f"{options:15d}  {share:6.2f}%  {bar}")
    return "\n".join(lines)
