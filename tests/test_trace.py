"""Tests for the workload trace format."""

import pytest

from repro.machines import MACHINE_NAMES, get_machine
from repro.workloads import WorkloadConfig, generate_blocks
from repro.workloads.trace import TraceError, read_trace, write_trace


class TestRoundTrip:
    @pytest.mark.parametrize("machine_name", MACHINE_NAMES)
    def test_generated_workload_roundtrips(self, machine_name):
        machine = get_machine(machine_name)
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=200))
        text = write_trace(blocks, machine.name)
        name, parsed = read_trace(text)
        assert name == machine.name
        assert len(parsed) == len(blocks)
        for original, recovered in zip(blocks, parsed):
            assert original.label == recovered.label
            assert original.operations == recovered.operations

    def test_twice_serialized_is_identical(self):
        machine = get_machine("SuperSPARC")
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=100))
        text = write_trace(blocks, machine.name)
        _, parsed = read_trace(text)
        assert write_trace(parsed, machine.name) == text


class TestParsing:
    def test_comments_and_blanks_ignored(self):
        text = """
        # a trace
        .machine X

        .block B0
          ADD r1 = r2   # trailing comment
        .end
        """
        name, blocks = read_trace(text)
        assert name == "X"
        assert blocks[0].operations[0].opcode == "ADD"

    def test_attributes(self):
        text = ".block B\n LD r1 = r2 !load\n ST = r1 !store\n" \
               " BR = !branch\n.end\n"
        _, blocks = read_trace(text)
        ops = blocks[0].operations
        assert ops[0].is_load and not ops[0].is_store
        assert ops[1].is_store
        assert ops[2].is_branch and ops[2].srcs == ()

    def test_missing_equals_rejected(self):
        with pytest.raises(TraceError, match="lacks '='"):
            read_trace(".block B\n ADD r1 r2\n.end\n")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(TraceError, match="unknown attribute"):
            read_trace(".block B\n ADD r1 = r2 !weird\n.end\n")

    def test_op_outside_block_rejected(self):
        with pytest.raises(TraceError, match="outside a block"):
            read_trace("ADD r1 = r2\n")

    def test_nested_block_rejected(self):
        with pytest.raises(TraceError, match="nested"):
            read_trace(".block A\n.block B\n.end\n")

    def test_unterminated_block_rejected(self):
        with pytest.raises(TraceError, match="unterminated"):
            read_trace(".block A\n ADD r1 = r2\n")

    def test_end_without_block_rejected(self):
        with pytest.raises(TraceError, match=".end without"):
            read_trace(".end\n")

    def test_error_carries_line_number(self):
        with pytest.raises(TraceError, match="line 3"):
            read_trace(".block B\n ADD r1 = r2\n BAD LINE\n.end\n")


class TestScheduleFromTrace:
    def test_trace_drives_scheduler(self):
        from repro.lowlevel import compile_mdes
        from repro.scheduler import schedule_workload

        machine = get_machine("SuperSPARC")
        blocks = generate_blocks(machine, WorkloadConfig(total_ops=150))
        _, parsed = read_trace(write_trace(blocks, machine.name))
        compiled = compile_mdes(machine.build_andor())
        direct = schedule_workload(machine, compiled, blocks,
                                   keep_schedules=True)
        via_trace = schedule_workload(machine, compiled, parsed,
                                      keep_schedules=True)
        assert direct.signature() == via_trace.signature()
