"""Basic blocks: the scheduling regions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List

from repro.ir.operation import Operation


@dataclass
class BasicBlock:
    """A straight-line sequence of operations.

    The list scheduler treats each block as one scheduling region with a
    fresh resource-usage map, as a prepass/postpass local scheduler does.
    """

    label: str
    operations: List[Operation] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def __repr__(self) -> str:
        return f"BasicBlock({self.label!r}, {len(self.operations)} ops)"
