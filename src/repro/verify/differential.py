"""Cross-backend and cross-stage differential execution.

The paper's central semantics claim is that every transform stage and
every compiled representation answers availability queries identically,
so a greedy list scheduler must produce the *exact same schedule* (and
the same attempt/success counts) no matter which (stage, backend) pair
serves it.  This module turns that claim into an executable check:

* :func:`differential_runs` schedules one workload through the full
  legal stage x backend matrix and compares, against the first run,
  - the per-block schedule signatures,
  - the ``CheckStats``-visible query answers (attempts and successes --
    the counts that are representation-independent; per-option and
    per-usage check counts legitimately differ across backends),
  - the independent oracle's verdict on every run.
* :func:`verify_transform_stages` replays the same workload after every
  individual pipeline stage (via ``run_pipeline``'s ``stage_hook``), so
  a semantics-breaking transform is pinned to the stage that broke it.
* :func:`exact_oracle_divergences` runs the branch-and-bound exact
  scheduler (:mod:`repro.exact`) as a third independent oracle: a
  heuristic schedule *shorter* than a proven optimum is an instant
  ``"optimality"`` divergence (the heuristic run booked fewer cycles
  than the machine model admits), and an exact schedule the replay
  oracle rejects is a bug in ``repro.exact`` itself.

Disagreements come back as typed :class:`Divergence` records; an empty
list is the "all representations agree" verdict the fuzzer relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.mdes import Mdes
from repro.engine.cache import DescriptionCache
from repro.engine.registry import create_engine, engine_names, get_engine_spec
from repro.engine.table import TableEngine
from repro.lowlevel.compiled import compile_mdes
from repro.scheduler.list_scheduler import schedule_workload
from repro.transforms.pipeline import FINAL_STAGE, run_pipeline
from repro.verify.oracle import ScheduleOracle

#: Stage pair the fuzzer exercises by default: the raw description and
#: the fully transformed one (the extremes bound the middle stages).
DEFAULT_STAGES: Tuple[int, ...] = (0, FINAL_STAGE)


def _default_exact_budget():
    """The exact leg's fuzz budget: tight on purpose.

    Here the exact scheduler is an oracle, not a benchmark -- both of
    its checks are one-sided (budget-exhausted blocks simply skip the
    gap comparison), so a small node budget trades a little optimality
    coverage for an order of magnitude of fuzz throughput.
    """
    from repro.exact import ExactBudget

    return ExactBudget(max_nodes=2_000, repair_nodes=4_000)


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between two configurations.

    Attributes:
        kind: ``"error"`` (a run raised), ``"schedule"`` (signatures
            differ), ``"stats"`` (query answers differ), ``"oracle"``
            (the independent oracle rejected a run's schedules),
            ``"transform"`` (a pipeline stage changed the schedule), or
            ``"optimality"`` (a heuristic schedule is shorter than the
            exact scheduler's proven optimum).
        where: The configuration that diverged, e.g. ``"stage4/automata"``.
        reference: The configuration it was compared against.
        detail: Human-readable description of the disagreement.
    """

    kind: str
    where: str
    reference: str = ""
    detail: str = ""

    def __str__(self) -> str:
        against = f" vs {self.reference}" if self.reference else ""
        return f"{self.kind}: {self.where}{against}: {self.detail}"


def _first_signature_delta(
    reference: tuple, candidate: tuple
) -> str:
    """Locate the first differing block between two run signatures."""
    if len(reference) != len(candidate):
        return (
            f"block counts differ: {len(reference)} vs {len(candidate)}"
        )
    for block_index, (ref, got) in enumerate(zip(reference, candidate)):
        if ref != got:
            return f"first differing block: index {block_index}"
    return "signatures differ"


def _signature_lengths(run_signature: tuple) -> List[int]:
    """Per-block schedule lengths recovered from a run signature."""
    lengths: List[int] = []
    for block_signature in run_signature:
        if not block_signature:
            lengths.append(0)
            continue
        times = [time for _, time, _ in block_signature]
        lengths.append(max(times) - min(times) + 1)
    return lengths


def exact_oracle_divergences(
    machine,
    blocks,
    reference_lengths: Optional[Sequence[int]] = None,
    reference_where: str = "",
    backend: str = "exact",
    stage: int = FINAL_STAGE,
    cache: Optional[DescriptionCache] = None,
    oracle: Optional[ScheduleOracle] = None,
    budget=None,
) -> List[Divergence]:
    """Run the exact scheduler as an independent third oracle.

    Two checks, both one-sided and therefore robust to budget
    exhaustion (non-optimal exact results skip the gap comparison):

    * every exact schedule must pass the replay oracle -- a rejection
      is a bug in :mod:`repro.exact`, not in the backend under test;
    * ``reference_lengths[i]`` (a heuristic run's per-block schedule
      lengths, e.g. from :func:`_signature_lengths`) must never beat a
      *proven* optimum -- a shorter heuristic schedule means its engine
      admitted a placement the machine model forbids.
    """
    from repro.exact import schedule_workload_exact

    spec = get_engine_spec(backend)
    if spec.scheduler != "exact":
        raise ValueError(f"backend {backend!r} is not an exact scheduler")
    if budget is None:
        budget = _default_exact_budget()
    if oracle is None:
        oracle = ScheduleOracle(machine)
    blocks = list(blocks)
    where = f"stage{stage}/{backend}"

    divergences: List[Divergence] = []
    try:
        engine = create_engine(backend, machine, stage=stage, cache=cache)
        run = schedule_workload_exact(
            machine, blocks, engine=engine, budget=budget
        )
    except Exception as exc:  # any failure is a finding
        return [Divergence(
            "error", where, detail=f"{type(exc).__name__}: {exc}",
        )]

    report = oracle.verify(run.schedules)
    if not report.ok:
        sample = "; ".join(str(diag) for diag in report.diagnostics[:3])
        divergences.append(Divergence(
            "oracle", where,
            detail=f"{len(report.diagnostics)} diagnostics: {sample}",
        ))
    if reference_lengths is not None:
        if len(reference_lengths) != len(run.results):
            divergences.append(Divergence(
                "optimality", reference_where or "reference",
                reference=where,
                detail=(
                    f"block counts differ: {len(reference_lengths)} vs "
                    f"{len(run.results)}"
                ),
            ))
            return divergences
        for block_index, result in enumerate(run.results):
            if not result.optimal:
                continue
            if reference_lengths[block_index] < result.length:
                divergences.append(Divergence(
                    "optimality", reference_where or "reference",
                    reference=where,
                    detail=(
                        f"block {block_index}: heuristic length "
                        f"{reference_lengths[block_index]} < proven "
                        f"optimum {result.length}"
                    ),
                ))
    return divergences


def differential_runs(
    machine,
    blocks,
    stages: Sequence[int] = DEFAULT_STAGES,
    backends: Optional[Sequence[str]] = None,
    cache: Optional[DescriptionCache] = None,
    oracle: Optional[ScheduleOracle] = None,
) -> List[Divergence]:
    """Schedule ``blocks`` through the stage x backend matrix and compare.

    Returns every observed divergence (empty list == full agreement).
    A private description cache keeps one case's compiles from aliasing
    another's in the process-wide cache.
    """
    from repro import obs

    if backends is None:
        backends = engine_names()
    heuristic_backends = [
        name for name in backends
        if get_engine_spec(name).scheduler == "list"
    ]
    exact_backends = [
        name for name in backends
        if get_engine_spec(name).scheduler == "exact"
    ]
    if cache is None:
        cache = DescriptionCache(name="verify")
    if oracle is None:
        oracle = ScheduleOracle(machine)
    blocks = list(blocks)

    divergences: List[Divergence] = []
    reference = None  # (where, signature, attempts, successes)
    with obs.span(
        "verify:differential", machine=machine.name,
        stages=",".join(str(stage) for stage in stages),
    ):
        for stage in stages:
            for backend in heuristic_backends:
                if stage < get_engine_spec(backend).min_stage:
                    continue
                where = f"stage{stage}/{backend}"
                try:
                    engine = create_engine(
                        backend, machine, stage=stage, cache=cache
                    )
                    run = schedule_workload(
                        machine, None, blocks,
                        keep_schedules=True, engine=engine,
                    )
                except Exception as exc:  # any failure is a finding
                    divergences.append(Divergence(
                        "error", where,
                        detail=f"{type(exc).__name__}: {exc}",
                    ))
                    continue
                report = oracle.verify(run.schedules)
                if not report.ok:
                    sample = "; ".join(
                        str(diag) for diag in report.diagnostics[:3]
                    )
                    divergences.append(Divergence(
                        "oracle", where,
                        detail=(
                            f"{len(report.diagnostics)} diagnostics: "
                            f"{sample}"
                        ),
                    ))
                signature = run.signature()
                answers = (run.stats.attempts, run.stats.successes)
                if reference is None:
                    reference = (where, signature, answers)
                    continue
                if signature != reference[1]:
                    divergences.append(Divergence(
                        "schedule", where, reference=reference[0],
                        detail=_first_signature_delta(
                            reference[1], signature
                        ),
                    ))
                if answers != reference[2]:
                    divergences.append(Divergence(
                        "stats", where, reference=reference[0],
                        detail=(
                            f"(attempts, successes) {answers} vs "
                            f"{reference[2]}"
                        ),
                    ))
        for backend in exact_backends:
            divergences.extend(exact_oracle_divergences(
                machine, blocks,
                reference_lengths=(
                    _signature_lengths(reference[1])
                    if reference is not None else None
                ),
                reference_where=reference[0] if reference else "",
                backend=backend, cache=cache, oracle=oracle,
            ))
    if divergences:
        obs.count(
            "repro_verify_divergences_total", len(divergences),
            help="Differential-run disagreements observed.",
            machine=machine.name,
        )
    return divergences


def verify_transform_stages(
    machine,
    blocks,
    direction: str = "forward",
    oracle: Optional[ScheduleOracle] = None,
) -> List[Divergence]:
    """Run the workload after each individual pipeline stage.

    Uses ``run_pipeline``'s ``stage_hook`` to capture every intermediate
    description, schedules the same blocks against each one (bit-vector
    table engine -- the production default), and reports the first stage
    whose schedule or oracle verdict deviates from the raw input's.
    """
    if oracle is None:
        oracle = ScheduleOracle(machine, direction=direction)
    blocks = list(blocks)
    captured: List[Tuple[str, Mdes]] = [("input", machine.build_andor())]
    run_pipeline(
        captured[0][1], direction=direction,
        stage_hook=lambda name, mdes: captured.append((name, mdes)),
    )

    divergences: List[Divergence] = []
    reference = None  # (stage name, signature)
    for stage_name, mdes in captured:
        where = f"pipeline/{stage_name}"
        try:
            engine = TableEngine(compile_mdes(mdes, bitvector=True))
            run = schedule_workload(
                machine, None, blocks,
                keep_schedules=True, direction=direction, engine=engine,
            )
        except Exception as exc:
            divergences.append(Divergence(
                "error", where, detail=f"{type(exc).__name__}: {exc}",
            ))
            continue
        report = oracle.verify(run.schedules)
        if not report.ok:
            sample = "; ".join(str(d) for d in report.diagnostics[:3])
            divergences.append(Divergence(
                "oracle", where,
                detail=f"{len(report.diagnostics)} diagnostics: {sample}",
            ))
        signature = run.signature()
        if reference is None:
            reference = (where, signature)
        elif signature != reference[1]:
            divergences.append(Divergence(
                "transform", where, reference=reference[0],
                detail=_first_signature_delta(reference[1], signature),
            ))
    return divergences
