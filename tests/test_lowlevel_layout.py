"""Tests for the layout (memory size) model."""

from repro.lowlevel.compiled import compile_mdes
from repro.lowlevel.layout import DEFAULT_LAYOUT, LayoutModel, mdes_size_bytes


class TestLayoutModel:
    def test_option_bytes(self):
        layout = LayoutModel()
        assert layout.option_bytes(0) == 8
        assert layout.option_bytes(3) == (2 + 6) * 4

    def test_or_tree_bytes(self):
        assert LayoutModel().or_tree_bytes(6) == (2 + 6) * 4

    def test_and_tree_bytes(self):
        assert LayoutModel().and_tree_bytes(3) == (2 + 3) * 4


class TestMdesSize:
    def test_toy_size_exact(self, toy_mdes):
        compiled = compile_mdes(toy_mdes, bitvector=False)
        # 5 options, 1 usage each: 5 * (2+2)*4 = 80
        # 3 OR-trees with 2,2,1 options: (2+2)+(2+2)+(2+1) = 11 words = 44
        # 1 AND node with 3 children: (2+3)*4 = 20
        assert mdes_size_bytes(compiled) == 80 + 44 + 20

    def test_sharing_reduces_size(self, resources, load_and_or_tree):
        from repro.core.mdes import Mdes, OperationClass
        from repro.core.tables import AndOrTree

        shared = Mdes(
            "S",
            resources,
            op_classes={
                "a": OperationClass("a", load_and_or_tree),
                "b": OperationClass("b", load_and_or_tree),
            },
            opcode_map={"A": "a", "B": "b"},
        )
        # Structurally identical but unshared copy for class b.
        copy = AndOrTree(tuple(load_and_or_tree.or_trees), name="copy")
        unshared = Mdes(
            "U",
            resources,
            op_classes={
                "a": OperationClass("a", load_and_or_tree),
                "b": OperationClass("b", copy),
            },
            opcode_map={"A": "a", "B": "b"},
        )
        shared_size = mdes_size_bytes(compile_mdes(shared))
        unshared_size = mdes_size_bytes(compile_mdes(unshared))
        assert shared_size < unshared_size

    def test_expansion_is_much_larger_for_wide_trees(self):
        from repro.machines import get_machine

        machine = get_machine("K5")
        andor = mdes_size_bytes(compile_mdes(machine.build_andor()))
        flat = mdes_size_bytes(compile_mdes(machine.build_or()))
        assert flat > 20 * andor  # the paper's headline size gap

    def test_bitvector_never_larger(self, toy_mdes):
        scalar = mdes_size_bytes(compile_mdes(toy_mdes, bitvector=False))
        packed = mdes_size_bytes(compile_mdes(toy_mdes, bitvector=True))
        assert packed <= scalar

    def test_default_layout_word_size(self):
        assert DEFAULT_LAYOUT.word_bytes == 4
