"""Tests for the constraint checker and its statistics."""

import pytest

from repro.lowlevel.bitvector import RUMap
from repro.lowlevel.checker import CheckStats, ConstraintChecker
from repro.lowlevel.compiled import compile_mdes


@pytest.fixture
def compiled(toy_mdes):
    return compile_mdes(toy_mdes)


@pytest.fixture
def flat_compiled(toy_mdes):
    return compile_mdes(toy_mdes.expanded())


class TestAndOrChecker:
    def test_single_cycle_capacity(self, compiled):
        """One M unit: only one load may issue per cycle."""
        ru = RUMap()
        checker = ConstraintChecker()
        constraint = compiled.constraint_for_opcode("LD")
        assert checker.try_reserve(ru, constraint, 0) is not None
        assert checker.try_reserve(ru, constraint, 0) is None
        assert checker.try_reserve(ru, constraint, 1) is not None

    def test_priority_picks_first_available(self, compiled, toy_mdes):
        ru = RUMap()
        checker = ConstraintChecker()
        constraint = compiled.constraint_for_opcode("LD")
        handle = checker.try_reserve(ru, constraint, 0)
        d0 = toy_mdes.resources.lookup("D0")
        # Highest-priority decoder (D0, at time -1) must be chosen.
        assert (-1, d0.mask) in handle

    def test_falls_back_to_lower_priority(self, compiled, toy_mdes):
        ru = RUMap()
        d0 = toy_mdes.resources.lookup("D0")
        d1 = toy_mdes.resources.lookup("D1")
        ru.reserve(-1, d0.mask)
        checker = ConstraintChecker()
        handle = checker.try_reserve(
            ru, compiled.constraint_for_opcode("LD"), 0
        )
        assert (-1, d1.mask) in handle

    def test_failure_reserves_nothing(self, compiled, toy_mdes):
        ru = RUMap()
        m = toy_mdes.resources.lookup("M")
        ru.reserve(0, m.mask)
        before = ru.copy()
        checker = ConstraintChecker()
        assert checker.try_reserve(
            ru, compiled.constraint_for_opcode("LD"), 0
        ) is None
        assert ru == before

    def test_release_undoes_reservation(self, compiled):
        ru = RUMap()
        checker = ConstraintChecker()
        constraint = compiled.constraint_for_opcode("LD")
        handle = checker.try_reserve(ru, constraint, 0)
        ConstraintChecker.release(ru, handle)
        assert not ru

    def test_short_circuit_on_failing_tree(self, compiled, toy_mdes):
        """Once one OR-tree fails, later trees must not be checked."""
        ru = RUMap()
        d0 = toy_mdes.resources.lookup("D0")
        d1 = toy_mdes.resources.lookup("D1")
        ru.reserve(-1, d0.mask | d1.mask)  # decoder tree (first) fails
        checker = ConstraintChecker()
        assert checker.try_reserve(
            ru, compiled.constraint_for_opcode("LD"), 0
        ) is None
        # 2 decoder options checked, nothing else.
        assert checker.stats.options_checked == 2
        assert checker.stats.resource_checks == 2


class TestEquivalence:
    def test_andor_matches_expanded_or(self, compiled, flat_compiled):
        """Both representations reserve identical resources (section 4)."""
        ru_a, ru_b = RUMap(), RUMap()
        checker_a, checker_b = ConstraintChecker(), ConstraintChecker()
        ca = compiled.constraint_for_opcode("LD")
        cb = flat_compiled.constraint_for_opcode("LD")
        for cycle in [0, 0, 0, 1, 1, 1, 2]:
            ha = checker_a.try_reserve(ru_a, ca, cycle)
            hb = checker_b.try_reserve(ru_b, cb, cycle)
            assert (ha is None) == (hb is None)
            assert ru_a == ru_b


class TestCheckStats:
    def test_counts_options_and_checks(self, flat_compiled):
        ru = RUMap()
        checker = ConstraintChecker()
        constraint = flat_compiled.constraint_for_opcode("LD")
        checker.try_reserve(ru, constraint, 0, class_name="load")
        stats = checker.stats
        assert stats.attempts == 1
        assert stats.successes == 1
        assert stats.options_checked == 1  # first option available
        assert stats.resource_checks == 3  # its three usages
        assert stats.attempts_by_class == {"load": 1}
        assert stats.options_histogram == {1: 1}

    def test_averages(self):
        stats = CheckStats()
        stats.record_attempt(4, 8, True)
        stats.record_attempt(2, 2, False)
        assert stats.options_per_attempt == 3.0
        assert stats.checks_per_attempt == 5.0
        assert stats.checks_per_option == pytest.approx(10 / 6)

    def test_empty_averages_are_zero(self):
        stats = CheckStats()
        assert stats.options_per_attempt == 0.0
        assert stats.checks_per_attempt == 0.0
        assert stats.checks_per_option == 0.0

    def test_merge(self):
        a, b = CheckStats(), CheckStats()
        a.record_attempt(1, 1, True, "x")
        b.record_attempt(2, 3, False, "x")
        b.record_attempt(1, 1, True, "y")
        a.merge(b)
        assert a.attempts == 3
        assert a.successes == 2
        assert a.options_checked == 4
        assert a.resource_checks == 5
        assert a.attempts_by_class == {"x": 2, "y": 1}
        assert a.options_histogram == {1: 2, 2: 1}
