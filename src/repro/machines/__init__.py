"""Detailed machine descriptions for the paper's four processors.

Each module carries the HMDES source of one machine, opcode tables, the
dynamic operation-class selection rules (operand-count variants and the
SuperSPARC cascade), and the workload profile used to synthesize its
SPEC CINT92-shaped instruction mix:

* :mod:`~repro.machines.pa7100` -- HP PA7100 (2-issue in-order; includes
  the historically duplicated memory-operation option of Table 8).
* :mod:`~repro.machines.pentium` -- Intel Pentium (U/V pairing rules; the
  one description that gains nothing from AND/OR-trees).
* :mod:`~repro.machines.supersparc` -- Sun SuperSPARC (3-issue, register
  port modeling, cascaded IALU pairs).
* :mod:`~repro.machines.amdk5` -- AMD-K5 (4-issue x86, Rop decomposition,
  multi-cycle dispatch).
"""

from repro.machines.base import Machine, OpcodeSpec
from repro.machines.registry import MACHINE_NAMES, get_machine

__all__ = ["MACHINE_NAMES", "Machine", "OpcodeSpec", "get_machine"]
